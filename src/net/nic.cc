#include "net/nic.h"

#include "fault/fault.h"

namespace mk::net {
namespace {

constexpr std::uint64_t kBufBytes = 2048;  // one buffer per descriptor

// Trace flow ids: RX frames pair InjectFromWire with DriverRxPop (both rings
// are FIFOs, so matching enqueue/dequeue serials identify one frame); TX
// frames pair DriverTxPush with the DMA completion.
constexpr std::uint64_t kTxFlowBit = std::uint64_t{1} << 40;

std::uint64_t RxFlow(std::uint64_t seq) { return trace::kFlowNet | seq; }
std::uint64_t TxFlow(std::uint64_t seq) { return trace::kFlowNet | kTxFlowBit | seq; }

}  // namespace

SimNic::SimNic(hw::Machine& machine, Config config)
    : machine_(machine), config_(config), rx_irq_(machine.exec()),
      wire_out_ready_(machine.exec()) {
  auto descs = static_cast<std::uint64_t>(config_.rx_descs);
  // 16-byte descriptors: 4 per cache line.
  rx_desc_region_ = machine_.mem().AllocLines(config_.node, descs / 4 + 1);
  tx_desc_region_ = machine_.mem().AllocLines(config_.node, descs / 4 + 1);
  rx_buf_region_ =
      machine_.mem().AllocLines(config_.node, descs * kBufBytes / sim::kCacheLineBytes);
  tx_buf_region_ =
      machine_.mem().AllocLines(config_.node, descs * kBufBytes / sim::kCacheLineBytes);
}

Cycles SimNic::CyclesPerByte() const {
  // bits/byte * GHz / Gbps = cycles per byte on the wire.
  return static_cast<Cycles>(8.0 * machine_.spec().clock_ghz / config_.gbps);
}

Task<> SimNic::InjectFromWire(Packet frame) {
  // The wire delivers back-to-back frames at line rate.
  Cycles service = static_cast<Cycles>(frame.size() + 24) * CyclesPerByte();  // +preamble/IFG
  Cycles done = wire_in_.ReserveAt(machine_.exec().now(), service);
  co_await machine_.exec().Delay(done - machine_.exec().now());
  // Fault injection happens after the wire pacing (the bits still occupied
  // the link) but before the frame reaches the RX ring: a dropped frame never
  // existed as far as the driver is concerned; a corrupted one is delivered
  // and must be caught by the stack's checksums.
  if (fault::Injector* inj = fault::Injector::active()) {
    if (inj->ShouldDropRxFrame(machine_.exec().now())) {
      trace::Emit<trace::Category::kFault>(trace::EventId::kFaultFrameDrop,
                                           machine_.exec().now(), config_.irq_core,
                                           frame.size(), 0);
      ++frames_dropped_;
      co_return;
    }
    if (inj->ShouldCorruptRxFrame(machine_.exec().now()) && !frame.empty()) {
      trace::Emit<trace::Category::kFault>(trace::EventId::kFaultFrameCorrupt,
                                           machine_.exec().now(), config_.irq_core,
                                           frame.size());
      frame.back() ^= 0xff;  // payload bit flip: survives to the L4 checksum
    }
  }
  if (rx_ring_.size() >= static_cast<std::size_t>(config_.rx_descs)) {
    ++frames_dropped_;
    co_return;
  }
  // DMA into the buffer + descriptor write-back (the NIC owns these stores;
  // they invalidate the driver's cached copies, which is charged when the
  // driver reads them in DriverRxPop).
  std::uint64_t seq = rx_slot_++;
  trace::Emit<trace::Category::kNet>(trace::EventId::kNetRxWire, machine_.exec().now(),
                                     config_.irq_core, frame.size(), 0, RxFlow(seq),
                                     trace::Phase::kFlowOut);
  rx_ring_.push_back(std::move(frame));
  if (irq_enabled_) {
    trace::Emit<trace::Category::kNet>(trace::EventId::kNetIrq, machine_.exec().now(),
                                       config_.irq_core);
    rx_irq_.Signal();
  }
}

Task<std::optional<Packet>> SimNic::DriverRxPop(int core) {
  if (rx_ring_.empty()) {
    co_return std::nullopt;
  }
  const Cycles start = machine_.exec().now();
  Packet frame = std::move(rx_ring_.front());
  rx_ring_.pop_front();
  std::uint64_t seq = rx_pop_slot_++;
  std::uint64_t slot = seq % static_cast<std::uint64_t>(config_.rx_descs);
  // Descriptor read (the NIC's write-back invalidated it) + payload read.
  co_await machine_.mem().Read(core, rx_desc_region_ + (slot / 4) * sim::kCacheLineBytes);
  co_await machine_.mem().Read(core, rx_buf_region_ + slot * kBufBytes, frame.size());
  // Descriptor recycle: hand the buffer back to the NIC.
  co_await machine_.mem().WritePosted(core,
                                      rx_desc_region_ + (slot / 4) * sim::kCacheLineBytes);
  trace::EmitSpan<trace::Category::kNet>(trace::EventId::kNetRxPop, start,
                                         machine_.exec().now(), core, frame.size(),
                                         RxFlow(seq), trace::Phase::kSpanFlowIn);
  co_return frame;
}

Task<bool> SimNic::DriverTxPush(int core, Packet frame) {
  if (tx_wire_.size() >= static_cast<std::size_t>(config_.tx_descs)) {
    co_return false;
  }
  const Cycles start = machine_.exec().now();
  std::uint64_t seq = tx_slot_++;
  std::uint64_t slot = seq % static_cast<std::uint64_t>(config_.tx_descs);
  // Payload copy into the DMA buffer + descriptor write + doorbell.
  co_await machine_.mem().WritePosted(core, tx_buf_region_ + slot * kBufBytes, frame.size());
  co_await machine_.mem().Write(core, tx_desc_region_ + (slot / 4) * sim::kCacheLineBytes);
  trace::EmitSpan<trace::Category::kNet>(trace::EventId::kNetTxPush, start,
                                         machine_.exec().now(), core, frame.size(),
                                         TxFlow(seq), trace::Phase::kSpanFlowOut);
  machine_.exec().Spawn(DmaOut(std::move(frame), TxFlow(seq)));
  co_return true;
}

Task<> SimNic::DmaOut(Packet frame, std::uint64_t flow) {
  Cycles service = static_cast<Cycles>(frame.size() + 24) * CyclesPerByte();
  Cycles done = wire_out_.ReserveAt(machine_.exec().now(), service);
  co_await machine_.exec().Delay(done - machine_.exec().now());
  if (fault::Injector* inj = fault::Injector::active();
      inj != nullptr && inj->ShouldDropTxFrame(machine_.exec().now())) {
    // The DMA engine serialized the frame, but the wire ate it.
    trace::Emit<trace::Category::kFault>(trace::EventId::kFaultFrameDrop,
                                         machine_.exec().now(), config_.irq_core,
                                         frame.size(), 1);
    ++frames_dropped_;
    co_return;
  }
  trace::Emit<trace::Category::kNet>(trace::EventId::kNetTxWire, machine_.exec().now(),
                                     config_.irq_core, frame.size(), 0, flow,
                                     trace::Phase::kFlowIn);
  tx_wire_.push_back(std::move(frame));
  ++frames_sent_;
  wire_out_ready_.Signal();
}

bool SimNic::WirePop(Packet* out) {
  if (tx_wire_.empty()) {
    return false;
  }
  *out = std::move(tx_wire_.front());
  tx_wire_.pop_front();
  return true;
}

}  // namespace mk::net
