#include "net/nic.h"

#include <algorithm>
#include <cassert>

#include "fault/fault.h"

namespace mk::net {
namespace {

constexpr std::uint64_t kBufBytes = 2048;  // one buffer per descriptor

// Trace flow ids: RX frames pair InjectFromWire with DriverRxPop (each ring
// is a FIFO, so matching enqueue/dequeue serials within a queue identify one
// frame); TX frames pair DriverTxPush with the DMA completion. The queue
// index lives in bits 32..39 so queue 0's ids are exactly the single-ring
// ids; kTxFlowBit (bit 40) stays clear of it.
constexpr std::uint64_t kTxFlowBit = std::uint64_t{1} << 40;

std::uint64_t RxFlow(int queue, std::uint64_t seq) {
  return trace::kFlowNet | (static_cast<std::uint64_t>(queue) << 32) |
         (seq & 0xffffffff);
}
std::uint64_t TxFlow(int queue, std::uint64_t seq) {
  return trace::kFlowNet | kTxFlowBit | (static_cast<std::uint64_t>(queue) << 32) |
         (seq & 0xffffffff);
}

}  // namespace

SimNic::SimNic(hw::Machine& machine, Config config)
    : machine_(machine), config_(config), wire_out_ready_(machine.exec()) {
  auto descs = static_cast<std::uint64_t>(config_.rx_descs);
  queues_.reserve(static_cast<std::size_t>(config_.queues));
  for (int q = 0; q < config_.queues; ++q) {
    auto queue = std::make_unique<Queue>(machine_.exec());
    // 16-byte descriptors: 4 per cache line. Per-queue regions are allocated
    // in the same order the single-ring device allocated its four regions, so
    // a one-queue NIC lands on the very same simulated addresses.
    queue->rx_desc_region = machine_.mem().AllocLines(config_.node, descs / 4 + 1);
    queue->tx_desc_region = machine_.mem().AllocLines(config_.node, descs / 4 + 1);
    queue->rx_buf_region =
        machine_.mem().AllocLines(config_.node, descs * kBufBytes / sim::kCacheLineBytes);
    queue->tx_buf_region =
        machine_.mem().AllocLines(config_.node, descs * kBufBytes / sim::kCacheLineBytes);
    queue->irq_core = q < static_cast<int>(config_.irq_cores.size())
                          ? config_.irq_cores[static_cast<std::size_t>(q)]
                          : config_.irq_core;
    queues_.push_back(std::move(queue));
  }
  // Identity RETA: reta_[hash % slots] == hash % queues when slots == queues,
  // so the default table is bit-identical to direct modulo steering.
  int slots = config_.reta_slots > 0 ? config_.reta_slots : config_.queues;
  reta_.resize(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    reta_[static_cast<std::size_t>(i)] = i % config_.queues;
  }
}

void SimNic::SetRetaEntry(int slot, int queue) {
  assert(queue >= 0 && queue < config_.queues);
  reta_[static_cast<std::size_t>(slot)] = queue;
  reta_reprogrammed_ = true;
}

int SimNic::ResteerQueue(int dead_queue, const std::vector<int>& survivors) {
  if (survivors.empty()) {
    return 0;
  }
  int rewritten = 0;
  std::size_t next = 0;
  for (std::size_t slot = 0; slot < reta_.size(); ++slot) {
    if (reta_[slot] == dead_queue) {
      reta_[slot] = survivors[next % survivors.size()];
      ++next;
      ++rewritten;
    }
  }
  if (rewritten > 0) {
    reta_reprogrammed_ = true;
    trace::Emit<trace::Category::kRecover>(
        trace::EventId::kRecoverResteer, machine_.exec().now(),
        queues_[static_cast<std::size_t>(survivors.front())]->irq_core,
        static_cast<std::uint64_t>(dead_queue),
        static_cast<std::uint64_t>(rewritten));
  }
  return rewritten;
}

Cycles SimNic::CyclesPerByte() const {
  // bits/byte * GHz / Gbps = cycles per byte on the wire.
  return static_cast<Cycles>(8.0 * machine_.spec().clock_ghz / config_.gbps);
}

int SimNic::RssQueueFor(const Packet& frame) const {
  if (config_.queues <= 1) {
    return 0;  // no hash drawn: single-queue steering is branch-free
  }
  std::optional<FlowTuple> tuple = ExtractFlowTuple(frame);
  if (!tuple.has_value()) {
    return 0;  // non-IP / runt frames go to the default queue, like real RSS
  }
  std::uint32_t hash = RssHash(config_.rss_seed, *tuple);
  return reta_[hash % static_cast<std::uint32_t>(reta_.size())];
}

void SimNic::NoteAdoptedFlow(const Packet& frame, int queue) {
  if (config_.queues <= 1) {
    return;
  }
  std::optional<FlowTuple> tuple = ExtractFlowTuple(frame);
  if (!tuple.has_value()) {
    return;
  }
  std::uint32_t hash = RssHash(config_.rss_seed, *tuple);
  int default_queue =
      static_cast<int>(hash % static_cast<std::uint32_t>(config_.queues));
  if (default_queue == queue) {
    return;  // the reprogrammed table agrees with the default for this flow
  }
  Queue& q = *queues_[static_cast<std::size_t>(queue)];
  ++q.stats.rx_adopted;
  if (std::find(adopted_hashes_.begin(), adopted_hashes_.end(), hash) ==
      adopted_hashes_.end()) {
    adopted_hashes_.push_back(hash);
    trace::Emit<trace::Category::kRecover>(
        trace::EventId::kRecoverFlowAdopt, machine_.exec().now(), q.irq_core,
        static_cast<std::uint64_t>(queue), hash);
  }
}

void SimNic::RaiseRxIrq(int queue) {
  Queue& q = *queues_[static_cast<std::size_t>(queue)];
  if (config_.irq_latency == 0) {
    // Legacy model: the interrupt is visible the instant DMA completes.
    trace::Emit<trace::Category::kNet>(trace::EventId::kNetIrq, machine_.exec().now(),
                                       q.irq_core, static_cast<std::uint64_t>(queue));
    q.rx_irq.Signal();
    return;
  }
  // MSI-style: the write crosses the fabric; once sent it is delivered even
  // if the driver masks the queue meanwhile (the poll loop absorbs spurious
  // wakeups, exactly as a real masked-then-cleared e1000 interrupt would).
  machine_.exec().CallAt(machine_.exec().now() + config_.irq_latency,
                         [this, queue] {
                           Queue& dq = *queues_[static_cast<std::size_t>(queue)];
                           trace::Emit<trace::Category::kNet>(
                               trace::EventId::kNetIrq, machine_.exec().now(),
                               dq.irq_core, static_cast<std::uint64_t>(queue));
                           dq.rx_irq.Signal();
                         });
}

Task<> SimNic::InjectFromWire(Packet frame) {
  // The wire delivers back-to-back frames at line rate (all queues share it).
  Cycles service = static_cast<Cycles>(frame.size() + 24) * CyclesPerByte();  // +preamble/IFG
  Cycles done = wire_in_.ReserveAt(machine_.exec().now(), service);
  co_await machine_.exec().Delay(done - machine_.exec().now());
  // RSS steering happens in hardware, before any integrity check: even a
  // frame corrupted on the wire lands on its flow's queue, so the drop is
  // attributed to the shard that owns the flow.
  int queue = RssQueueFor(frame);
  if (reta_reprogrammed_) {
    NoteAdoptedFlow(frame, queue);
  }
  Queue& q = *queues_[static_cast<std::size_t>(queue)];
  // Fault injection happens after the wire pacing (the bits still occupied
  // the link) but before the frame reaches the RX ring: a dropped frame never
  // existed as far as the driver is concerned; a corrupted one is delivered
  // and must be caught by the stack's checksums.
  if (fault::Injector* inj = fault::Injector::active()) {
    if (inj->ShouldDropRxFrame(machine_.exec().now(), queue)) {
      trace::Emit<trace::Category::kFault>(trace::EventId::kFaultFrameDrop,
                                           machine_.exec().now(), q.irq_core,
                                           frame.size(), 0);
      ++frames_dropped_;
      ++q.stats.rx_fault_drops;
      co_return;
    }
    if (inj->ShouldCorruptRxFrame(machine_.exec().now(), queue) && !frame.empty()) {
      trace::Emit<trace::Category::kFault>(trace::EventId::kFaultFrameCorrupt,
                                           machine_.exec().now(), q.irq_core,
                                           frame.size());
      frame.back() ^= 0xff;  // payload bit flip: survives to the L4 checksum
    }
  }
  if (q.rx_ring.size() >= static_cast<std::size_t>(config_.rx_descs)) {
    ++frames_dropped_;
    ++q.stats.rx_overflow_drops;
    co_return;
  }
  // DMA into the buffer + descriptor write-back (the NIC owns these stores;
  // they invalidate the driver's cached copies, which is charged when the
  // driver reads them in DriverRxPop).
  std::uint64_t seq = q.rx_slot++;
  trace::Emit<trace::Category::kNet>(trace::EventId::kNetRxWire, machine_.exec().now(),
                                     q.irq_core, frame.size(),
                                     static_cast<std::uint64_t>(queue),
                                     RxFlow(queue, seq), trace::Phase::kFlowOut);
  q.rx_ring.push_back(std::move(frame));
  ++q.stats.rx_frames;
  if (q.irq_enabled) {
    RaiseRxIrq(queue);
  }
}

Task<std::optional<Packet>> SimNic::DriverRxPop(int core, int queue) {
  Queue& q = *queues_[static_cast<std::size_t>(queue)];
  if (q.rx_ring.empty()) {
    co_return std::nullopt;
  }
  const Cycles start = machine_.exec().now();
  Packet frame = std::move(q.rx_ring.front());
  q.rx_ring.pop_front();
  std::uint64_t seq = q.rx_pop_slot++;
  std::uint64_t slot = seq % static_cast<std::uint64_t>(config_.rx_descs);
  // Descriptor read (the NIC's write-back invalidated it) + payload read.
  co_await machine_.mem().Read(core, q.rx_desc_region + (slot / 4) * sim::kCacheLineBytes);
  co_await machine_.mem().Read(core, q.rx_buf_region + slot * kBufBytes, frame.size());
  // Descriptor recycle: hand the buffer back to the NIC.
  co_await machine_.mem().WritePosted(core,
                                      q.rx_desc_region + (slot / 4) * sim::kCacheLineBytes);
  trace::EmitSpan<trace::Category::kNet>(trace::EventId::kNetRxPop, start,
                                         machine_.exec().now(), core, frame.size(),
                                         RxFlow(queue, seq), trace::Phase::kSpanFlowIn);
  co_return frame;
}

Task<bool> SimNic::DriverTxPush(int core, Packet frame, int queue) {
  Queue& q = *queues_[static_cast<std::size_t>(queue)];
  if (q.tx_on_wire >= static_cast<std::uint64_t>(config_.tx_descs)) {
    ++q.stats.tx_ring_full;
    co_return false;
  }
  const Cycles start = machine_.exec().now();
  std::uint64_t seq = q.tx_slot++;
  std::uint64_t slot = seq % static_cast<std::uint64_t>(config_.tx_descs);
  // Payload copy into the DMA buffer + descriptor write + doorbell.
  co_await machine_.mem().WritePosted(core, q.tx_buf_region + slot * kBufBytes, frame.size());
  co_await machine_.mem().Write(core, q.tx_desc_region + (slot / 4) * sim::kCacheLineBytes);
  trace::EmitSpan<trace::Category::kNet>(trace::EventId::kNetTxPush, start,
                                         machine_.exec().now(), core, frame.size(),
                                         TxFlow(queue, seq), trace::Phase::kSpanFlowOut);
  machine_.exec().Spawn(DmaOut(std::move(frame), TxFlow(queue, seq), queue));
  co_return true;
}

Task<> SimNic::DmaOut(Packet frame, std::uint64_t flow, int queue) {
  Queue& q = *queues_[static_cast<std::size_t>(queue)];
  Cycles service = static_cast<Cycles>(frame.size() + 24) * CyclesPerByte();
  Cycles done = wire_out_.ReserveAt(machine_.exec().now(), service);
  co_await machine_.exec().Delay(done - machine_.exec().now());
  if (fault::Injector* inj = fault::Injector::active();
      inj != nullptr && inj->ShouldDropTxFrame(machine_.exec().now(), queue)) {
    // The DMA engine serialized the frame, but the wire ate it.
    trace::Emit<trace::Category::kFault>(trace::EventId::kFaultFrameDrop,
                                         machine_.exec().now(), q.irq_core,
                                         frame.size(), 1);
    ++frames_dropped_;
    ++q.stats.tx_fault_drops;
    co_return;
  }
  trace::Emit<trace::Category::kNet>(trace::EventId::kNetTxWire, machine_.exec().now(),
                                     q.irq_core, frame.size(),
                                     static_cast<std::uint64_t>(queue), flow,
                                     trace::Phase::kFlowIn);
  tx_wire_.emplace_back(queue, std::move(frame));
  ++q.tx_on_wire;
  ++q.stats.tx_frames;
  ++frames_sent_;
  wire_out_ready_.Signal();
}

bool SimNic::WirePop(Packet* out) {
  if (tx_wire_.empty()) {
    return false;
  }
  auto& [queue, frame] = tx_wire_.front();
  --queues_[static_cast<std::size_t>(queue)]->tx_on_wire;
  *out = std::move(frame);
  tx_wire_.pop_front();
  return true;
}

}  // namespace mk::net
