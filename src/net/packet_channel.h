// PacketChannel: packet transfer between user-space domains over URPC
// (section 5.2, "IP loopback"): a descriptor travels as a cache-line URPC
// message, the payload through a dedicated shared buffer ring. No other
// memory is shared, which is exactly why the multikernel loopback beats the
// in-kernel shared-queue design of Table 4.
#ifndef MK_NET_PACKET_CHANNEL_H_
#define MK_NET_PACKET_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "hw/machine.h"
#include "net/wire.h"
#include "sim/task.h"
#include "sim/types.h"
#include "urpc/channel.h"

namespace mk::net {

using sim::Cycles;
using sim::Task;

class PacketChannel {
 public:
  struct Options {
    int slots = 32;
    int numa_node = -1;  // default: sender's package
  };

  PacketChannel(hw::Machine& machine, int sender_core, int receiver_core, Options opts);

  // Sends a packet: payload lines retire through the sender's store buffer,
  // the descriptor goes as a (flow-controlled) URPC message.
  Task<> Send(Packet packet);

  // Receives the next packet, charging the descriptor fetch and the payload
  // line reads.
  Task<Packet> Recv();

  // Recv with a bound on the wait: returns nullopt if no packet arrives
  // within `timeout` cycles. This is the recovery path for receivers whose
  // sender may have fail-stop halted (DB replica failover); it schedules a
  // timer event, so callers gate it on fault::Injector::active().
  Task<std::optional<Packet>> RecvTimeout(Cycles timeout);

  bool HasPacket() const { return descr_.HasMessage(); }
  sim::Event& readable() { return descr_.readable(); }
  int sender_core() const { return descr_.sender_core(); }
  int receiver_core() const { return descr_.receiver_core(); }

 private:
  struct Descriptor {
    std::uint32_t slot = 0;
    std::uint32_t len = 0;
  };

  hw::Machine& machine_;
  Options opts_;
  urpc::Channel descr_;
  sim::Addr payload_region_;
  std::deque<Packet> payloads_;  // host-side packet bytes, FIFO with descr_
  std::uint32_t send_slot_ = 0;
  std::uint32_t recv_slot_ = 0;
};

inline constexpr std::uint64_t kPacketSlotBytes = 2048;

}  // namespace mk::net

#endif  // MK_NET_PACKET_CHANNEL_H_
