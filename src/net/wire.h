// Wire formats: Ethernet, ARP (minimal), IPv4, UDP, TCP headers with real
// serialization and Internet checksums.
//
// The network stack (section 5.4: "our current network stack runs a separate
// instance of lwIP per application") operates on these for functional
// correctness — checksums are computed and verified for real — while the
// timing of packet handling is charged to the simulated machine by the stack
// and NIC layers.
#ifndef MK_NET_WIRE_H_
#define MK_NET_WIRE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

namespace mk::net {

using MacAddr = std::array<std::uint8_t, 6>;
using Ipv4Addr = std::uint32_t;  // host byte order internally

constexpr Ipv4Addr MakeIp(int a, int b, int c, int d) {
  return (static_cast<Ipv4Addr>(a) << 24) | (static_cast<Ipv4Addr>(b) << 16) |
         (static_cast<Ipv4Addr>(c) << 8) | static_cast<Ipv4Addr>(d);
}

// A packet is a flat byte buffer; headers are pushed in front of payloads.
using Packet = std::vector<std::uint8_t>;

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
inline constexpr std::uint8_t kIpProtoUdp = 17;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::size_t kEthHeaderBytes = 14;
inline constexpr std::size_t kIpHeaderBytes = 20;
inline constexpr std::size_t kUdpHeaderBytes = 8;
inline constexpr std::size_t kTcpHeaderBytes = 20;
inline constexpr std::size_t kMtu = 1500;

struct EthHeader {
  MacAddr dst{};
  MacAddr src{};
  std::uint16_t ethertype = kEtherTypeIpv4;
};

struct IpHeader {
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  Ipv4Addr src = 0;
  Ipv4Addr dst = 0;
  std::uint16_t total_length = 0;  // filled by serializer
  std::uint16_t ident = 0;
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // filled by serializer
};

struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 65535;
};

// RFC 1071 Internet checksum over a byte range (+optional pseudo header sum).
std::uint16_t InternetChecksum(const std::uint8_t* data, std::size_t len,
                               std::uint32_t initial = 0);

// --- Builders: return a complete frame (Ethernet + IP + L4 + payload). ---

Packet BuildUdpFrame(const EthHeader& eth, IpHeader ip, UdpHeader udp,
                     const std::uint8_t* payload, std::size_t payload_len);

Packet BuildTcpFrame(const EthHeader& eth, IpHeader ip, const TcpHeader& tcp,
                     const std::uint8_t* payload, std::size_t payload_len);

// --- Parsers: validate lengths and checksums; nullopt on any corruption. ---

struct ParsedFrame {
  EthHeader eth;
  IpHeader ip;
  // Exactly one of these is set, matching ip.protocol.
  std::optional<UdpHeader> udp;
  std::optional<TcpHeader> tcp;
  std::size_t payload_offset = 0;
  std::size_t payload_len = 0;
};

// Why a parse failed, and how much payload the parser actually checksummed
// before giving up. The stack uses this to keep distinct drop counters and to
// charge checksum cost on a uniform basis (bytes of L4 payload summed),
// instead of conflating every failure and charging whole-frame sizes.
enum class ParseError : std::uint8_t {
  kNone = 0,
  kTruncated,     // frame/header lengths short or inconsistent
  kBadChecksum,   // IP, UDP, or TCP checksum mismatch
  kUnknownProto,  // well-formed but not IPv4 UDP/TCP
};

struct ParseInfo {
  ParseError error = ParseError::kNone;
  // L4 payload bytes the parser ran a checksum over. On success this equals
  // ParsedFrame::payload_len; on a UDP/TCP checksum failure it is the payload
  // that was summed before the mismatch was detected; on truncation or an
  // unknown protocol no payload was summed and it is zero.
  std::size_t payload_len = 0;
};

std::optional<ParsedFrame> ParseFrame(const Packet& frame, ParseInfo* info = nullptr);

// --- RSS flow identification (multi-queue NIC steering) ---

// The 4-tuple (plus IP protocol) receive-side scaling hashes to pick an RX
// queue. Extracted without checksum validation: hardware steers frames before
// any software integrity check runs, so a frame whose payload was corrupted
// on the wire still lands on the queue its flow owns (and is then rejected by
// that queue's stack, keeping drop attribution per shard).
struct FlowTuple {
  Ipv4Addr src_ip = 0;
  Ipv4Addr dst_ip = 0;
  std::uint16_t src_port = 0;  // 0 when the L4 header is absent/short
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;
};

// Best-effort, bounds-checked header peek for steering. nullopt for frames
// too short to carry an IPv4 header or with a foreign ethertype; such frames
// are steered to queue 0, like a real NIC's "no RSS match" default queue.
std::optional<FlowTuple> ExtractFlowTuple(const Packet& frame);

// Seeded hash over the flow tuple — a keyed SplitMix64 mix standing in for
// the 82576's Toeplitz hash. Same seed and tuple give the same value in every
// run, on every platform; changing the seed permutes flow->queue placement.
std::uint32_t RssHash(std::uint64_t seed, const FlowTuple& t);

}  // namespace mk::net

#endif  // MK_NET_WIRE_H_
