#include "net/crosswire.h"

#include <utility>

#include "fault/fault.h"

namespace mk::net {

CrossWire::CrossWire(sim::ParallelEngine& engine, int domain_a, SimNic& nic_a,
                     int domain_b, SimNic& nic_b, sim::Cycles latency)
    : engine_(engine),
      latency_(latency),
      ab_{domain_a, domain_b, &nic_a, &nic_b},
      ba_{domain_b, domain_a, &nic_b, &nic_a} {
  engine_.Link(domain_a, domain_b, latency);
  engine_.Link(domain_b, domain_a, latency);
}

void CrossWire::Start() {
  engine_.domain(ab_.src_domain).Spawn(Pump(ab_));
  engine_.domain(ba_.src_domain).Spawn(Pump(ba_));
}

void CrossWire::Stop() {
  ab_.stop = true;
  ba_.stop = true;
  // Wakes a pump blocked on wire_out_ready; each Signal must run in its
  // NIC's own domain, so route through the setup path only when idle.
  ab_.src->wire_out_ready().Signal();
  ba_.src->wire_out_ready().Signal();
}

sim::Task<> CrossWire::Pump(Direction& dir) {
  sim::Executor* src_exec = &engine_.domain(dir.src_domain);
  sim::Executor* dst_exec = &engine_.domain(dir.dst_domain);
  for (;;) {
    Packet p;
    while (dir.src->WirePop(&p)) {
      // Cross-machine link fault sites, consulted in the source domain so
      // the spec's per-domain firing counter and probability stream belong
      // to this machine. A delay spike only ever widens the delivery time
      // past the registered link latency, so the conservative bound holds.
      sim::Cycles extra = 0;
      if (fault::Injector* inj = fault::Injector::active()) {
        const sim::Cycles now = src_exec->now();
        if (inj->ShouldDropWireFrame(now, dir.src_domain, dir.dst_domain)) {
          ++dir.dropped;
          continue;
        }
        extra = inj->WireExtraDelay(now, dir.src_domain, dir.dst_domain);
      }
      ++dir.forwarded;
      // The posted callback runs on the destination's owning thread at
      // src.now() + latency; only then does the frame enter the
      // destination's world (paced, RSS-steered, DMA'd by its own NIC).
      auto deliver = [dst = dir.dst, dst_exec, frame = std::move(p)]() mutable {
        dst_exec->Spawn(dst->InjectFromWire(std::move(frame)));
      };
      static_assert(sizeof(deliver) <= sim::InlineCallback::kInlineBytes);
      if (extra > 0) {
        ++dir.delayed;
        engine_.Post(dir.src_domain, dir.dst_domain,
                     src_exec->now() + latency_ + extra, std::move(deliver));
      } else {
        engine_.Send(dir.src_domain, dir.dst_domain, std::move(deliver));
      }
    }
    if (dir.stop) {
      co_return;
    }
    co_await dir.src->wire_out_ready().Wait();
    if (dir.stop) {
      co_return;
    }
  }
}

}  // namespace mk::net
