// A small lwIP-like network stack instance, linked per application domain
// (section 4.10: "our current network stack runs a separate instance of lwIP
// per application").
//
// Functionally real: frames are built and parsed with checksums verified;
// TCP runs a proper handshake/sequence-number state machine with go-back-N
// retransmission. Processing costs are charged per frame on the stack's
// core: a fixed per-packet software cost plus a per-byte checksum cost
// charged on the L4 payload bytes actually summed (the paper's e1000 driver
// does not use checksum offload).
//
// Two TCP disciplines coexist (DESIGN.md §15):
//
//   * legacy (default) — the paper-bench subset: the server completes accept
//     on the SYN (2-way), close is a lone FIN, connections are never erased,
//     and the retransmit timer is a per-connection coroutine armed only
//     while a fault::Injector is installed. Byte-identical to every golden
//     transcript recorded before the lifecycle work.
//   * lifecycle (SetLifecycle) — connection-scale realism: a true 3-way
//     handshake with a half-open SYN_RCVD state, FIN/ACK close with bounded
//     TIME_WAIT, a capped half-open table defended by SYN-cookie stateless
//     handshake completion, abandoned-connect sweeping, and *every*
//     per-connection timer (retransmit, connect deadline, SYN_RCVD expiry,
//     TIME_WAIT reap, read deadlines) carried by one hierarchical TimerWheel
//     instead of ad-hoc per-connection timers. Connections live in a hashed
//     connection table and are erased when their state machine terminates
//     and the application has Release()d them, so 100k-connection churn
//     leaks neither table entries nor wheel slots.
#ifndef MK_NET_STACK_H_
#define MK_NET_STACK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "hw/machine.h"
#include "net/conn_table.h"
#include "net/timer_wheel.h"
#include "net/wire.h"
#include "recover/config.h"
#include "sim/event.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::net {

using sim::Cycles;
using sim::Task;

// Software cost book for the stack (calibrated against Table 4 / section
// 5.4's throughput figures).
struct StackCosts {
  Cycles per_packet_in = 2600;   // demux, header processing, pbuf management
  Cycles per_packet_out = 2200;  // header build, pbuf, interface hand-off
  double per_byte_checksum = 0.5;  // no hardware checksum offload
};

// TCP retransmission tuning (RTO, max retransmit rounds) lives in
// recover::RecoveryConfig — see src/recover/config.h. In legacy mode it is
// consulted only while a fault::Injector is installed; in lifecycle mode the
// wheel-driven retransmit timer is always armed.

// TCP connection states (lifecycle mode; legacy connections stay kLegacy and
// bypass the state machine entirely).
enum class TcpState : std::uint8_t {
  kLegacy,
  kSynSent,      // client, SYN out, handshake pending
  kSynRcvd,      // server, SYN-ACK out, client ACK pending (half-open)
  kEstablished,
  kFinWait1,     // active close: our FIN out, not yet acked
  kFinWait2,     // our FIN acked, peer's FIN pending
  kClosing,      // simultaneous close: both FINs seen, our FIN not yet acked
  kTimeWait,     // fully closed actively; parked for the bounded 2MSL
  kCloseWait,    // passive close: peer's FIN seen, app has not closed yet
  kLastAck,      // passive close: our FIN out, final ACK pending
  kClosed,
};

// Why a lifecycle connection reached kClosed (close() counters are split by
// these causes).
enum class CloseCause : std::uint8_t {
  kActiveFin,       // we closed first; FIN/ACK handshake + TIME_WAIT completed
  kPassiveFin,      // peer closed first; our FIN's final ACK arrived
  kReset,           // RST received
  kConnectTimeout,  // client handshake abandoned (bounded TcpConnect)
  kHalfOpenExpiry,  // server SYN_RCVD never completed (evicted)
  kRetxAbort,       // retransmit rounds exhausted; peer presumed dead
  kNumCauses,
};
inline constexpr std::size_t kNumCloseCauses =
    static_cast<std::size_t>(CloseCause::kNumCauses);
const char* CloseCauseName(CloseCause c);

// Lifecycle-mode tuning. `enabled` flips the stack from the legacy subset to
// the full state machine; the rest only applies when enabled.
struct TcpLifecycle {
  bool enabled = false;
  // How long an actively-closed connection is parked in TIME_WAIT before its
  // table entry is reaped (the bounded 2MSL).
  Cycles time_wait = 400'000;
  // How long a server half-open (SYN_RCVD) connection may wait for the
  // client's ACK before being evicted.
  Cycles syn_rcvd_timeout = 1'000'000;
  // Half-open cap: at or above this many SYN_RCVD entries, new SYNs are
  // answered with a stateless SYN-cookie SYN-ACK instead of creating state.
  // 0 = uncapped (no cookies).
  int max_half_open = 0;
};

class NetStack {
 public:
  NetStack(hw::Machine& machine, int core, Ipv4Addr ip, MacAddr mac,
           StackCosts costs = StackCosts());

  int core() const { return core_; }
  Ipv4Addr ip() const { return ip_; }
  const MacAddr& mac() const { return mac_; }

  // Where built frames go (a NIC driver channel, a PacketChannel, a test).
  using OutputFn = std::function<Task<>(Packet)>;
  void SetOutput(OutputFn out) { output_ = std::move(out); }

  // Static ARP entry (the evaluation uses a closed set of hosts).
  void AddArp(Ipv4Addr ip, MacAddr mac) { arp_[ip] = mac; }

  // Failover opt-in: answer a mid-flow segment for a connection this stack
  // has never seen with a RST instead of silently dropping it. A surviving
  // shard that inherits a dead shard's RSS-re-steered flows uses this to tell
  // the client its old connection is gone, so the client can retry with a
  // fresh SYN that the survivor's listener accepts (flow adoption). Off by
  // default, and only active while a fault::Injector is installed — plain
  // runs never see re-steered flows, and keeping the path injector-gated
  // guarantees they schedule no extra sends. (Lifecycle mode resets unknown
  // flows unconditionally: cleanly-closed connections are erased, so a late
  // segment deserves the RST.)
  void SetSendRstForUnknown(bool on) { send_rst_for_unknown_ = on; }

  // Switches this stack to the full TCP lifecycle discipline (see the header
  // comment). Must be set before any connection exists.
  void SetLifecycle(TcpLifecycle cfg) { lifecycle_ = cfg; }
  const TcpLifecycle& lifecycle() const { return lifecycle_; }

  // Feeds one received frame through the stack (charges processing costs).
  Task<> Input(Packet frame);

  // --- UDP ---
  struct UdpDatagram {
    Ipv4Addr src_ip = 0;
    std::uint16_t src_port = 0;
    std::vector<std::uint8_t> payload;
  };
  class UdpSocket {
   public:
    explicit UdpSocket(sim::Executor& exec) : ready(exec) {}
    std::deque<UdpDatagram> queue;
    sim::Event ready;
    Task<UdpDatagram> Recv();
    bool TryRecv(UdpDatagram* out);
  };
  UdpSocket& UdpBind(std::uint16_t port);
  Task<> UdpSendTo(std::uint16_t src_port, Ipv4Addr dst_ip, std::uint16_t dst_port,
                   std::vector<std::uint8_t> payload);

  // --- TCP ---
  class TcpConn {
   public:
    TcpConn(sim::Executor& exec) : readable(exec), closed_ev(exec) {}
    // Reads whatever is buffered (blocking until data or FIN). Empty result
    // means the peer closed.
    Task<std::vector<std::uint8_t>> Read();
    bool established = false;
    bool peer_closed = false;
    std::deque<std::uint8_t> rx;
    sim::Event readable;
    sim::Event closed_ev;
    // Identity.
    Ipv4Addr remote_ip = 0;
    std::uint16_t remote_port = 0;
    std::uint16_t local_port = 0;
    // Sequence state.
    std::uint32_t snd_nxt = 0;
    std::uint32_t rcv_nxt = 0;
    // Retransmission state. The bookkeeping (snd_una, the unacked queue,
    // duplicate-ACK count) is maintained unconditionally — it adds no
    // simulated events — but the timer that consumes it is only armed while
    // a fault::Injector is installed (legacy) or always (lifecycle, on the
    // wheel).
    std::uint32_t snd_una = 0;  // oldest unacknowledged sequence number
    struct SentSeg {
      std::uint32_t seq = 0;
      std::uint32_t seq_len = 0;  // sequence space consumed (payload + SYN/FIN)
      TcpFlags flags;
      std::vector<std::uint8_t> data;
    };
    std::deque<SentSeg> unacked;
    int dup_acks = 0;
    bool retx_timer_running = false;  // legacy coroutine timer
    // Set when a bounded TcpConnect gave up on the handshake. Late segments
    // for an abandoned connection are answered with RST (under injection):
    // a retransmitted SYN may have built a half-open connection on a server
    // that would otherwise pin an admission worker forever.
    bool abandoned = false;

    // --- Lifecycle-mode state (inert for legacy connections) ---
    TcpState state = TcpState::kLegacy;
    CloseCause close_cause = CloseCause::kReset;
    bool fin_sent = false;
    std::uint32_t fin_seq = 0;        // sequence number our FIN occupied
    int retx_tries = 0;
    Cycles retx_rto = 0;
    std::uint32_t retx_marker = 0;    // snd_una at last (re)arm, for progress
    TimerWheel::TimerId retx_id = TimerWheel::kNoTimer;
    TimerWheel::TimerId lifecycle_id = TimerWheel::kNoTimer;  // connect/SYN_RCVD/TIME_WAIT
    TimerWheel::TimerId wait_id = TimerWheel::kNoTimer;       // WaitReadable deadline
    bool wait_timed_out = false;
    // Reap protocol: a terminal connection is erased from the table only
    // when no suspended coroutine still references it (`pins`) and the
    // application has released its pointer (`app_released`).
    int pins = 0;
    bool app_released = false;
  };
  class Listener {
   public:
    explicit Listener(sim::Executor& exec) : ready(exec) {}
    std::deque<TcpConn*> accepted;
    sim::Event ready;
    Task<TcpConn*> Accept();
  };
  Listener& TcpListen(std::uint16_t port);
  // Connects and waits for the handshake. With `timeout` > 0 the wait is
  // bounded and nullptr is returned (and the half-open connection torn down)
  // if the SYN-ACK does not arrive in time — open-loop load generators need
  // this so a shed SYN cannot wedge a client forever. 0 = wait indefinitely
  // (the original behaviour; schedules no timer events in legacy mode). In
  // lifecycle mode an abandoned connect is swept from the connection table,
  // so its 4-tuple is immediately reusable.
  Task<TcpConn*> TcpConnect(Ipv4Addr dst_ip, std::uint16_t dst_port,
                            Cycles timeout = 0);
  Task<> TcpSend(TcpConn& conn, const std::uint8_t* data, std::size_t len);
  Task<> TcpSend(TcpConn& conn, const std::string& data);
  Task<> TcpClose(TcpConn& conn);
  // Waits until `conn` has buffered data or a peer close, or until `timeout`
  // cycles pass (0 = wait forever). Returns false only on a bare timeout.
  // The deadline rides the timer wheel, so 100k idle keep-alive connections
  // cost no per-wait heap allocation and no un-cancellable executor events.
  Task<bool> WaitReadable(TcpConn& conn, Cycles timeout);
  // Lifecycle mode: the application is done with `conn`'s pointer. The table
  // entry is reaped once the state machine also finishes (and vice versa).
  // Call after TcpClose (or after observing a close/reset). No-op in legacy
  // mode, where connections are never erased.
  void Release(TcpConn* conn);

  // Statistics. Drops are counted by cause; drops() is their sum.
  std::uint64_t frames_in() const { return frames_in_; }
  std::uint64_t frames_out() const { return frames_out_; }
  std::uint64_t drops() const {
    return drops_bad_frame_ + drops_not_for_us_ + drops_no_listener_ +
           drops_unknown_proto_;
  }
  std::uint64_t drops_bad_frame() const { return drops_bad_frame_; }
  std::uint64_t drops_not_for_us() const { return drops_not_for_us_; }
  std::uint64_t drops_no_listener() const { return drops_no_listener_; }
  std::uint64_t drops_unknown_proto() const { return drops_unknown_proto_; }
  std::uint64_t tcp_retransmits() const { return tcp_retransmits_; }
  std::uint64_t tcp_rsts_sent() const { return tcp_rsts_sent_; }
  std::uint64_t tcp_rsts_received() const { return tcp_rsts_received_; }

  // --- Lifecycle-mode accounting (per core: one stack serves one core) ---
  int established_count() const { return established_count_; }
  int half_open_count() const { return half_open_count_; }
  int time_wait_count() const { return time_wait_count_; }
  int peak_established() const { return peak_established_; }
  std::uint64_t closes(CloseCause c) const {
    return closes_[static_cast<std::size_t>(c)];
  }
  std::uint64_t syn_cookies_sent() const { return syn_cookies_sent_; }
  std::uint64_t syn_cookie_accepts() const { return syn_cookie_accepts_; }
  std::uint64_t syn_cookie_rejects() const { return syn_cookie_rejects_; }
  std::uint64_t half_open_evicted() const { return half_open_evicted_; }
  std::uint64_t time_wait_reaped() const { return time_wait_reaped_; }
  std::uint64_t abandoned_swept() const { return abandoned_swept_; }
  const ConnTable<TcpConn>& conn_table() const { return conns_; }
  const TimerWheel& wheel() const { return wheel_; }

 private:
  Task<> Emit(Packet frame, std::size_t payload_len);
  Task<> HandleTcp(const ParsedFrame& f, const Packet& frame);
  Task<> HandleTcpLifecycle(const ParsedFrame& f, const Packet& frame, TcpConn& c);
  Task<> SendTcpSegment(TcpConn& conn, TcpFlags flags, const std::uint8_t* data,
                        std::size_t len);
  // Re-sends a previously sent segment verbatim except for a fresh ack field;
  // does not advance snd_nxt or touch the unacked queue.
  Task<> SendTcpRaw(TcpConn& conn, std::uint32_t seq, TcpFlags flags,
                    const std::uint8_t* data, std::size_t len);
  // Go-back-N recovery loop for one connection; spawned (at most once per
  // connection at a time) only while a fault::Injector is installed. Legacy
  // mode only — lifecycle retransmits ride the wheel.
  Task<> RetransmitTimer(TcpConn& conn);
  // Answers the segment described by `f` with a RST (used for unknown flows
  // re-steered onto this stack and for abandoned handshakes).
  Task<> SendRstForSegment(const ParsedFrame& f);
  // Stateless segment send to an arbitrary peer (SYN-cookie SYN-ACKs).
  Task<> SendStatelessSegment(Ipv4Addr dst_ip, std::uint16_t src_port,
                              std::uint16_t dst_port, std::uint32_t seq,
                              std::uint32_t ack, TcpFlags flags);
  MacAddr ResolveMac(Ipv4Addr ip) const;

  // --- Lifecycle internals ---
  std::uint32_t CookieFor(Ipv4Addr remote_ip, std::uint16_t remote_port,
                          std::uint16_t local_port) const;
  std::uint16_t AllocEphemeralPort(Ipv4Addr dst_ip, std::uint16_t dst_port);
  // Single terminal-transition point: cancels timers, drops the unacked
  // queue, counts the cause, wakes readers, and reaps if permitted.
  void CloseConn(TcpConn& c, CloseCause cause);
  void EnterTimeWait(TcpConn& c);
  void LeaveState(TcpConn& c);  // decrements the counter c.state occupies
  // Erases the conn from the table iff terminal, unpinned, and released.
  void MaybeReap(TcpConn& c);
  void ArmRetx(TcpConn& c, Cycles rto);
  void RetxFire(TcpConn* c);
  Task<> ResendWindow(TcpConn* c);
  // RAII pin: keeps a conn out of the reaper while a coroutine that may
  // suspend still holds a reference to it.
  struct PinGuard {
    NetStack* stack;
    TcpConn* conn;
    PinGuard(NetStack* s, TcpConn* c) : stack(s), conn(c) { ++c->pins; }
    PinGuard(const PinGuard&) = delete;
    PinGuard& operator=(const PinGuard&) = delete;
    ~PinGuard() {
      if (--conn->pins == 0) {
        stack->MaybeReap(*conn);
      }
    }
  };

  hw::Machine& machine_;
  int core_;
  Ipv4Addr ip_;
  MacAddr mac_;
  StackCosts costs_;
  OutputFn output_;
  std::map<Ipv4Addr, MacAddr> arp_;
  std::map<std::uint16_t, std::unique_ptr<UdpSocket>> udp_;
  std::map<std::uint16_t, std::unique_ptr<Listener>> listeners_;
  // Hashed connection table keyed by ConnKey(remote ip, remote port, local
  // port). Legacy connections are inserted and never erased (their pointers
  // must stay valid for the run); lifecycle connections are reaped when
  // their state machine terminates.
  ConnTable<TcpConn> conns_;
  TimerWheel wheel_;
  TcpLifecycle lifecycle_;
  std::uint16_t next_ephemeral_ = 49152;
  std::uint16_t ip_ident_ = 1;
  std::uint64_t frames_in_ = 0;
  std::uint64_t frames_out_ = 0;
  std::uint64_t drops_bad_frame_ = 0;      // truncated or failed a checksum
  std::uint64_t drops_not_for_us_ = 0;     // valid frame, foreign IP address
  std::uint64_t drops_no_listener_ = 0;    // no bound socket/listener for the port
  std::uint64_t drops_unknown_proto_ = 0;  // not IPv4 UDP/TCP
  std::uint64_t tcp_retransmits_ = 0;
  std::uint64_t tcp_rsts_sent_ = 0;
  std::uint64_t tcp_rsts_received_ = 0;
  bool send_rst_for_unknown_ = false;
  // Lifecycle accounting.
  int established_count_ = 0;
  int half_open_count_ = 0;
  int time_wait_count_ = 0;
  int peak_established_ = 0;
  std::uint64_t closes_[kNumCloseCauses] = {};
  std::uint64_t syn_cookies_sent_ = 0;
  std::uint64_t syn_cookie_accepts_ = 0;
  std::uint64_t syn_cookie_rejects_ = 0;
  std::uint64_t half_open_evicted_ = 0;
  std::uint64_t time_wait_reaped_ = 0;
  std::uint64_t abandoned_swept_ = 0;
};

}  // namespace mk::net

#endif  // MK_NET_STACK_H_
