// A small lwIP-like network stack instance, linked per application domain
// (section 4.10: "our current network stack runs a separate instance of lwIP
// per application").
//
// Functionally real: frames are built and parsed with checksums verified;
// TCP runs a proper handshake/sequence-number state machine with go-back-N
// retransmission (the retransmit timer is armed only while a fault::Injector
// is installed — plain runs use a lossless, ordered link and schedule no
// timer events). Processing costs are charged per frame on the stack's core:
// a fixed per-packet software cost plus a per-byte checksum cost charged on
// the L4 payload bytes actually summed (the paper's e1000 driver does not
// use checksum offload).
#ifndef MK_NET_STACK_H_
#define MK_NET_STACK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "hw/machine.h"
#include "net/wire.h"
#include "recover/config.h"
#include "sim/event.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::net {

using sim::Cycles;
using sim::Task;

// Software cost book for the stack (calibrated against Table 4 / section
// 5.4's throughput figures).
struct StackCosts {
  Cycles per_packet_in = 2600;   // demux, header processing, pbuf management
  Cycles per_packet_out = 2200;  // header build, pbuf, interface hand-off
  double per_byte_checksum = 0.5;  // no hardware checksum offload
};

// TCP retransmission tuning (RTO, max retransmit rounds) lives in
// recover::RecoveryConfig — see src/recover/config.h. It is consulted only
// while a fault::Injector is installed.

class NetStack {
 public:
  NetStack(hw::Machine& machine, int core, Ipv4Addr ip, MacAddr mac,
           StackCosts costs = StackCosts());

  int core() const { return core_; }
  Ipv4Addr ip() const { return ip_; }
  const MacAddr& mac() const { return mac_; }

  // Where built frames go (a NIC driver channel, a PacketChannel, a test).
  using OutputFn = std::function<Task<>(Packet)>;
  void SetOutput(OutputFn out) { output_ = std::move(out); }

  // Static ARP entry (the evaluation uses a closed set of hosts).
  void AddArp(Ipv4Addr ip, MacAddr mac) { arp_[ip] = mac; }

  // Failover opt-in: answer a mid-flow segment for a connection this stack
  // has never seen with a RST instead of silently dropping it. A surviving
  // shard that inherits a dead shard's RSS-re-steered flows uses this to tell
  // the client its old connection is gone, so the client can retry with a
  // fresh SYN that the survivor's listener accepts (flow adoption). Off by
  // default, and only active while a fault::Injector is installed — plain
  // runs never see re-steered flows, and keeping the path injector-gated
  // guarantees they schedule no extra sends.
  void SetSendRstForUnknown(bool on) { send_rst_for_unknown_ = on; }

  // Feeds one received frame through the stack (charges processing costs).
  Task<> Input(Packet frame);

  // --- UDP ---
  struct UdpDatagram {
    Ipv4Addr src_ip = 0;
    std::uint16_t src_port = 0;
    std::vector<std::uint8_t> payload;
  };
  class UdpSocket {
   public:
    explicit UdpSocket(sim::Executor& exec) : ready(exec) {}
    std::deque<UdpDatagram> queue;
    sim::Event ready;
    Task<UdpDatagram> Recv();
    bool TryRecv(UdpDatagram* out);
  };
  UdpSocket& UdpBind(std::uint16_t port);
  Task<> UdpSendTo(std::uint16_t src_port, Ipv4Addr dst_ip, std::uint16_t dst_port,
                   std::vector<std::uint8_t> payload);

  // --- TCP (lossless-link subset) ---
  class TcpConn {
   public:
    TcpConn(sim::Executor& exec) : readable(exec), closed_ev(exec) {}
    // Reads whatever is buffered (blocking until data or FIN). Empty result
    // means the peer closed.
    Task<std::vector<std::uint8_t>> Read();
    bool established = false;
    bool peer_closed = false;
    std::deque<std::uint8_t> rx;
    sim::Event readable;
    sim::Event closed_ev;
    // Identity.
    Ipv4Addr remote_ip = 0;
    std::uint16_t remote_port = 0;
    std::uint16_t local_port = 0;
    // Sequence state.
    std::uint32_t snd_nxt = 0;
    std::uint32_t rcv_nxt = 0;
    // Retransmission state. The bookkeeping (snd_una, the unacked queue,
    // duplicate-ACK count) is maintained unconditionally — it adds no
    // simulated events — but the retransmit timer that consumes it is only
    // spawned while a fault::Injector is installed.
    std::uint32_t snd_una = 0;  // oldest unacknowledged sequence number
    struct SentSeg {
      std::uint32_t seq = 0;
      std::uint32_t seq_len = 0;  // sequence space consumed (payload + SYN/FIN)
      TcpFlags flags;
      std::vector<std::uint8_t> data;
    };
    std::deque<SentSeg> unacked;
    int dup_acks = 0;
    bool retx_timer_running = false;
    // Set when a bounded TcpConnect gave up on the handshake. Late segments
    // for an abandoned connection are answered with RST (under injection):
    // a retransmitted SYN may have built a half-open connection on a server
    // that would otherwise pin an admission worker forever.
    bool abandoned = false;
  };
  class Listener {
   public:
    explicit Listener(sim::Executor& exec) : ready(exec) {}
    std::deque<TcpConn*> accepted;
    sim::Event ready;
    Task<TcpConn*> Accept();
  };
  Listener& TcpListen(std::uint16_t port);
  // Connects and waits for the handshake. With `timeout` > 0 the wait is
  // bounded and nullptr is returned (and the half-open connection torn down)
  // if the SYN-ACK does not arrive in time — open-loop load generators need
  // this so a shed SYN cannot wedge a client forever. 0 = wait indefinitely
  // (the original behaviour; schedules no timer events).
  Task<TcpConn*> TcpConnect(Ipv4Addr dst_ip, std::uint16_t dst_port,
                            Cycles timeout = 0);
  Task<> TcpSend(TcpConn& conn, const std::uint8_t* data, std::size_t len);
  Task<> TcpSend(TcpConn& conn, const std::string& data);
  Task<> TcpClose(TcpConn& conn);

  // Statistics. Drops are counted by cause; drops() is their sum.
  std::uint64_t frames_in() const { return frames_in_; }
  std::uint64_t frames_out() const { return frames_out_; }
  std::uint64_t drops() const {
    return drops_bad_frame_ + drops_not_for_us_ + drops_no_listener_ +
           drops_unknown_proto_;
  }
  std::uint64_t drops_bad_frame() const { return drops_bad_frame_; }
  std::uint64_t drops_not_for_us() const { return drops_not_for_us_; }
  std::uint64_t drops_no_listener() const { return drops_no_listener_; }
  std::uint64_t drops_unknown_proto() const { return drops_unknown_proto_; }
  std::uint64_t tcp_retransmits() const { return tcp_retransmits_; }
  std::uint64_t tcp_rsts_sent() const { return tcp_rsts_sent_; }
  std::uint64_t tcp_rsts_received() const { return tcp_rsts_received_; }

 private:
  Task<> Emit(Packet frame, std::size_t payload_len);
  Task<> HandleTcp(const ParsedFrame& f, const Packet& frame);
  Task<> SendTcpSegment(TcpConn& conn, TcpFlags flags, const std::uint8_t* data,
                        std::size_t len);
  // Re-sends a previously sent segment verbatim except for a fresh ack field;
  // does not advance snd_nxt or touch the unacked queue.
  Task<> SendTcpRaw(TcpConn& conn, std::uint32_t seq, TcpFlags flags,
                    const std::uint8_t* data, std::size_t len);
  // Go-back-N recovery loop for one connection; spawned (at most once per
  // connection at a time) only while a fault::Injector is installed.
  Task<> RetransmitTimer(TcpConn& conn);
  // Answers the segment described by `f` with a RST (used for unknown flows
  // re-steered onto this stack and for abandoned handshakes).
  Task<> SendRstForSegment(const ParsedFrame& f);
  MacAddr ResolveMac(Ipv4Addr ip) const;

  hw::Machine& machine_;
  int core_;
  Ipv4Addr ip_;
  MacAddr mac_;
  StackCosts costs_;
  OutputFn output_;
  std::map<Ipv4Addr, MacAddr> arp_;
  std::map<std::uint16_t, std::unique_ptr<UdpSocket>> udp_;
  std::map<std::uint16_t, std::unique_ptr<Listener>> listeners_;
  // Key: (remote ip, remote port, local port).
  std::map<std::tuple<Ipv4Addr, std::uint16_t, std::uint16_t>, std::unique_ptr<TcpConn>>
      conns_;
  std::uint16_t next_ephemeral_ = 49152;
  std::uint16_t ip_ident_ = 1;
  std::uint64_t frames_in_ = 0;
  std::uint64_t frames_out_ = 0;
  std::uint64_t drops_bad_frame_ = 0;      // truncated or failed a checksum
  std::uint64_t drops_not_for_us_ = 0;     // valid frame, foreign IP address
  std::uint64_t drops_no_listener_ = 0;    // no bound socket/listener for the port
  std::uint64_t drops_unknown_proto_ = 0;  // not IPv4 UDP/TCP
  std::uint64_t tcp_retransmits_ = 0;
  std::uint64_t tcp_rsts_sent_ = 0;
  std::uint64_t tcp_rsts_received_ = 0;
  bool send_rst_for_unknown_ = false;
};

}  // namespace mk::net

#endif  // MK_NET_STACK_H_
