// Simulated e1000-class gigabit NIC: descriptor rings in (simulated) shared
// memory, DMA paced at line rate, interrupts routed to the driver's core
// (section 4.2: "device interrupts are routed in hardware to the appropriate
// core, demultiplexed by that core's CPU driver, and delivered to the driver
// process as a message").
#ifndef MK_NET_NIC_H_
#define MK_NET_NIC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "hw/machine.h"
#include "net/wire.h"
#include "sim/event.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::net {

using sim::Cycles;
using sim::Task;

class SimNic {
 public:
  struct Config {
    int rx_descs = 256;
    int tx_descs = 256;
    double gbps = 1.0;   // line rate
    int node = 0;        // NUMA node of rings and buffers
    int irq_core = 0;    // where interrupts are delivered
  };

  SimNic(hw::Machine& machine, Config config);

  // --- Wire side (load generators / link peer) ---

  // A frame arriving from the wire: paced at line rate, DMA'd into the RX
  // ring (dropped if full), IRQ raised if the driver enabled interrupts.
  Task<> InjectFromWire(Packet frame);

  // Frames the NIC has transmitted onto the wire.
  bool WirePop(Packet* out);
  sim::Event& wire_out_ready() { return wire_out_ready_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }

  // --- Driver side ---

  // Pops the next received frame: charges the descriptor and payload-buffer
  // reads on `core`. Returns nullopt if the ring is empty.
  Task<std::optional<Packet>> DriverRxPop(int core);
  bool RxReady() const { return !rx_ring_.empty(); }

  // Queues a frame for transmission: charges descriptor + payload writes,
  // then the DMA engine serializes it onto the wire at line rate.
  // Returns false if the TX ring is full.
  Task<bool> DriverTxPush(int core, Packet frame);

  // Interrupts: delivered only when enabled (drivers disable them while
  // polling, as e1000 drivers do). The handler runs at IRQ delivery; the
  // driver charges its own trap cost when it wakes.
  void SetInterruptsEnabled(bool enabled) { irq_enabled_ = enabled; }
  sim::Event& rx_irq() { return rx_irq_; }

  Cycles CyclesPerByte() const;

 private:
  Task<> DmaOut(Packet frame, std::uint64_t flow);

  hw::Machine& machine_;
  Config config_;
  sim::Addr rx_desc_region_;
  sim::Addr tx_desc_region_;
  sim::Addr rx_buf_region_;
  sim::Addr tx_buf_region_;
  std::deque<Packet> rx_ring_;
  std::deque<Packet> tx_wire_;
  std::uint64_t rx_slot_ = 0;
  std::uint64_t rx_pop_slot_ = 0;
  std::uint64_t tx_slot_ = 0;
  sim::FifoResource wire_in_;   // inbound line-rate pacing
  sim::FifoResource wire_out_;  // outbound line-rate pacing
  sim::Event rx_irq_;
  sim::Event wire_out_ready_;
  bool irq_enabled_ = true;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

}  // namespace mk::net

#endif  // MK_NET_NIC_H_
