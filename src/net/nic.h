// Simulated e1000e/82576-class gigabit NIC: N RX/TX queue pairs with
// descriptor rings in (simulated) shared memory, DMA paced at line rate on a
// single shared wire, a seeded RSS hash steering inbound flows to queues, and
// per-queue interrupts routed to each queue's configured core (section 4.2:
// "device interrupts are routed in hardware to the appropriate core,
// demultiplexed by that core's CPU driver, and delivered to the driver
// process as a message"). The single-queue configuration (the default) is
// bit-identical to the original single-ring device.
#ifndef MK_NET_NIC_H_
#define MK_NET_NIC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "hw/machine.h"
#include "net/wire.h"
#include "sim/event.h"
#include "sim/task.h"
#include "sim/types.h"
#include "trace/trace.h"

namespace mk::net {

using sim::Cycles;
using sim::Task;

class SimNic {
 public:
  struct Config {
    int rx_descs = 256;  // per RX queue
    int tx_descs = 256;  // per TX queue
    double gbps = 1.0;   // line rate (shared by all queues: one wire)
    int node = 0;        // NUMA node of rings and buffers
    int irq_core = 0;    // where queue 0's interrupts go (single-queue compat)

    // --- Multi-queue (82576-class) ---
    int queues = 1;  // RX/TX queue pairs; flows steered by RSS over 4-tuples
    std::uint64_t rss_seed = 0x52535348;  // 'RSSH': keyed flow->queue hash
    // RSS indirection table (RETA) slots: the hash picks a slot, the slot
    // names a queue. 0 means `queues` slots with the identity mapping, which
    // is bit-identical to direct `hash % queues` steering for every queue
    // count (a fixed 128-slot table would not be: `hash % 128 % q` differs
    // from `hash % q` for non-power-of-2 q). Failover reprograms entries at
    // runtime to move a dead queue's flows onto survivors.
    int reta_slots = 0;
    // Per-queue interrupt routing; empty means every queue -> irq_core,
    // shorter than `queues` falls back to irq_core for the tail.
    std::vector<int> irq_cores;
    // MSI-style delivery delay between the frame landing in the ring and the
    // IRQ reaching its core (the same fabric hop an IPI pays). 0 = the IRQ is
    // visible the instant DMA completes (the original single-ring model).
    Cycles irq_latency = 0;
  };

  // Per-queue counters; drops are attributed to the queue RSS steered the
  // frame to, so a hot shard's losses are visible in isolation.
  struct QueueStats {
    std::uint64_t rx_frames = 0;          // frames DMA'd into the RX ring
    std::uint64_t rx_overflow_drops = 0;  // RX ring full
    std::uint64_t rx_fault_drops = 0;     // injected wire loss (mk::fault)
    std::uint64_t tx_frames = 0;          // frames serialized onto the wire
    std::uint64_t tx_fault_drops = 0;     // injected loss after TX DMA
    std::uint64_t tx_ring_full = 0;       // DriverTxPush refused
    // Frames landing here only because the RETA was reprogrammed (the default
    // mapping would have steered them to the queue they were re-steered off).
    std::uint64_t rx_adopted = 0;
    std::uint64_t rx_drops() const { return rx_overflow_drops + rx_fault_drops; }
  };

  SimNic(hw::Machine& machine, Config config);

  // --- Wire side (load generators / link peer) ---

  // A frame arriving from the wire: paced at line rate, steered to an RX
  // queue by the RSS hash, DMA'd into that queue's ring (dropped if full),
  // IRQ raised to the queue's core if the queue's interrupts are enabled.
  Task<> InjectFromWire(Packet frame);

  // Frames the NIC has transmitted onto the wire (all TX queues merge here).
  bool WirePop(Packet* out);
  sim::Event& wire_out_ready() { return wire_out_ready_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }

  int num_queues() const { return config_.queues; }
  int irq_core(int queue = 0) const { return queues_[static_cast<std::size_t>(queue)]->irq_core; }
  const QueueStats& queue_stats(int queue) const {
    return queues_[static_cast<std::size_t>(queue)]->stats;
  }
  // The steering decision for a frame (pure, host-side): which RX queue the
  // RETA assigns its RSS hash to. Exposed so tests and load generators can
  // predict placement.
  int RssQueueFor(const Packet& frame) const;

  // --- RSS indirection table (runtime reprogrammable) ---

  int reta_slots() const { return static_cast<int>(reta_.size()); }
  int reta_entry(int slot) const { return reta_[static_cast<std::size_t>(slot)]; }
  void SetRetaEntry(int slot, int queue);
  // Failover: rewrites every RETA slot currently naming `dead_queue` to the
  // survivors, round-robin in the order given. Returns the number of slots
  // rewritten. Frames already sitting in the dead queue's RX ring stay there
  // (a real NIC cannot recall DMA'd descriptors); only future frames move.
  int ResteerQueue(int dead_queue, const std::vector<int>& survivors);

  // --- Driver side (per queue; the defaults keep single-queue callers) ---

  // Pops the next received frame from `queue`: charges the descriptor and
  // payload-buffer reads on `core`. Returns nullopt if the ring is empty.
  Task<std::optional<Packet>> DriverRxPop(int core, int queue = 0);
  bool RxReady(int queue = 0) const {
    return !queues_[static_cast<std::size_t>(queue)]->rx_ring.empty();
  }

  // Queues a frame for transmission on `queue`: charges descriptor + payload
  // writes, then the DMA engine serializes it onto the shared wire at line
  // rate. Returns false if the TX ring is full.
  Task<bool> DriverTxPush(int core, Packet frame, int queue = 0);

  // Interrupts: delivered only when enabled (drivers disable them while
  // polling, as e1000 drivers do). Masking is per queue; the handler runs at
  // IRQ delivery and the driver charges its own trap cost when it wakes.
  void SetInterruptsEnabled(bool enabled) {
    for (auto& q : queues_) {
      q->irq_enabled = enabled;
    }
  }
  void SetInterruptsEnabled(int queue, bool enabled) {
    queues_[static_cast<std::size_t>(queue)]->irq_enabled = enabled;
  }
  sim::Event& rx_irq(int queue = 0) {
    return queues_[static_cast<std::size_t>(queue)]->rx_irq;
  }

  Cycles CyclesPerByte() const;

 private:
  struct Queue {
    explicit Queue(sim::Executor& exec) : rx_irq(exec) {}
    sim::Addr rx_desc_region = 0;
    sim::Addr tx_desc_region = 0;
    sim::Addr rx_buf_region = 0;
    sim::Addr tx_buf_region = 0;
    std::deque<Packet> rx_ring;
    std::uint64_t rx_slot = 0;
    std::uint64_t rx_pop_slot = 0;
    std::uint64_t tx_slot = 0;
    std::uint64_t tx_on_wire = 0;  // this queue's frames sitting in tx_wire_
    sim::Event rx_irq;
    bool irq_enabled = true;
    int irq_core = 0;
    QueueStats stats;
  };

  Task<> DmaOut(Packet frame, std::uint64_t flow, int queue);
  void RaiseRxIrq(int queue);
  // Adopted-flow accounting for a frame steered to `queue`; called only once
  // the RETA has been reprogrammed (zero work on the default mapping).
  void NoteAdoptedFlow(const Packet& frame, int queue);

  hw::Machine& machine_;
  Config config_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<int> reta_;          // slot -> queue
  bool reta_reprogrammed_ = false;
  std::vector<std::uint32_t> adopted_hashes_;  // flows already traced as adopted
  std::deque<std::pair<int, Packet>> tx_wire_;  // (source queue, frame)
  sim::FifoResource wire_in_;   // inbound line-rate pacing (one wire)
  sim::FifoResource wire_out_;  // outbound line-rate pacing (one wire)
  sim::Event wire_out_ready_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

}  // namespace mk::net

#endif  // MK_NET_NIC_H_
