// Hierarchical timer wheel for connection-scale timers (the lwIP/Linux
// pattern ROADMAP item 5 names as the exemplar).
//
// A serving stack at 100k+ concurrent connections arms and cancels a timer
// on nearly every segment (retransmit deadlines, idle timeouts, TIME_WAIT
// reaps, handshake expiries). The executor's event queue cannot carry those
// directly: sim::Event::WaitTimeout heap-allocates a shared node per wait and
// its timer is uncancellable, so 100k idle connections would mean 100k
// un-reclaimable pending events. The wheel gives O(1) Schedule/Cancel with
// freelisted nodes and schedules *executor* events only at ticks where a
// timer is actually due — an idle wheel arms nothing, and a cancelled timer
// leaves at most one stale no-op wake behind.
//
// Layout: level 0 is 256 slots of one tick each (tick = 2^tick_shift cycles,
// default 4096); levels 1..3 are 64 slots each covering successively
// 256-tick, 16384-tick, and 1M-tick ranges, for a total span of 2^26 ticks
// (~275 G cycles at the default tick — further deadlines are clamped and
// re-cascade). Each level keeps an occupancy bitmap so finding the next due
// tick skips idle slots; crossing a level boundary cascades that slot's
// timers down by their exact expiry tick. Timers therefore fire at tick
// granularity: a deadline rounds up to the next tick boundary. Expiry order
// is deterministic — slots fire in tick order and within a slot in
// scheduling order (cascades preserve relative order).
//
// The wheel never fires a callback synchronously from Schedule or Cancel;
// callbacks run from the executor's event loop at the due tick's cycle, so
// they may freely schedule and cancel timers (including their own slot's).
#ifndef MK_NET_TIMER_WHEEL_H_
#define MK_NET_TIMER_WHEEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/executor.h"
#include "sim/types.h"

namespace mk::net {

using sim::Cycles;

class TimerWheel {
 public:
  // Opaque timer handle: 0 is "no timer". Generation-checked, so a stale id
  // (already fired or cancelled, slot since reused) cancels nothing.
  using TimerId = std::uint64_t;
  static constexpr TimerId kNoTimer = 0;

  // `tick_shift` sets the tick to 2^tick_shift cycles. The default (4096
  // cycles) resolves the stack's timers (RTOs and idle timeouts are 10^5+
  // cycles) with slack while keeping the wheel span near 10^11 cycles.
  explicit TimerWheel(sim::Executor& exec, unsigned tick_shift = 12)
      : exec_(exec), tick_shift_(tick_shift) {}
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Arms `fn` to run `delay` cycles from now, rounded up to the next tick
  // boundary (a zero delay still waits for the next tick: callbacks never run
  // inside the caller's stack frame).
  TimerId Schedule(Cycles delay, std::function<void()> fn);

  // Disarms a pending timer. Returns false if the id is stale (the timer
  // already fired or was already cancelled).
  bool Cancel(TimerId id);

  Cycles tick_cycles() const { return Cycles{1} << tick_shift_; }

  // --- Accounting (leak gates assert armed() == 0 after a drained run) ---
  std::size_t armed() const { return armed_; }
  std::uint64_t scheduled() const { return scheduled_; }
  std::uint64_t fired() const { return fired_; }
  std::uint64_t cancelled() const { return cancelled_; }
  std::uint64_t cascades() const { return cascades_; }

 private:
  static constexpr unsigned kL0Bits = 8;   // 256 one-tick slots
  static constexpr unsigned kLxBits = 6;   // 64 slots per upper level
  static constexpr std::size_t kL0Slots = std::size_t{1} << kL0Bits;
  static constexpr std::size_t kLxSlots = std::size_t{1} << kLxBits;
  static constexpr int kLevels = 4;
  // Tick shift of each level's slot width: L0 slots are 1 tick, L1 slots
  // 2^8 ticks, L2 2^14, L3 2^20; the wheel spans 2^26 ticks.
  static constexpr unsigned kLevelShift[kLevels] = {0, 8, 14, 20};
  static constexpr std::uint64_t kSpanTicks = std::uint64_t{1} << 26;
  static constexpr std::uint64_t kNoDue = ~std::uint64_t{0};

  struct Node {
    std::function<void()> fn;
    std::uint64_t expiry_tick = 0;
    std::uint32_t gen = 1;
    std::uint32_t index = 0;   // position in pool_, fixed for the node's life
    Node* prev = nullptr;
    Node* next = nullptr;
    std::int8_t level = -1;    // -1 = not linked
    std::int16_t slot = 0;
  };

  void Link(Node* n);              // places by expiry_tick vs current_tick_
  void Unlink(Node* n);
  void FreeNode(Node* n);
  std::uint64_t NextDueTick() const;
  void AdvanceTo(std::uint64_t target_tick);
  void CascadeSlot(int level, std::size_t slot);
  void FireSlot(std::size_t slot);
  void ArmWake();
  void OnWake(std::uint64_t seq);

  sim::Executor& exec_;
  unsigned tick_shift_;
  std::uint64_t current_tick_ = 0;  // last processed tick
  // Slot lists: head/tail per slot, level-major. L0 first, then L1..L3.
  Node* head_[kL0Slots + 3 * kLxSlots] = {};
  Node* tail_[kL0Slots + 3 * kLxSlots] = {};
  std::uint64_t occ_l0_[kL0Slots / 64] = {};
  std::uint64_t occ_up_[3] = {};  // one word per upper level
  std::deque<Node> pool_;         // stable addresses; freelist below
  std::vector<Node*> free_;
  std::size_t armed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t cascades_ = 0;
  // Pending executor wake: armed at the earliest due tick. Superseded wakes
  // (a new earlier timer re-armed) and drained wakes (every timer cancelled)
  // fire as no-ops, checked by sequence number.
  bool wake_pending_ = false;
  Cycles wake_at_ = 0;
  std::uint64_t wake_seq_ = 0;
};

}  // namespace mk::net

#endif  // MK_NET_TIMER_WHEEL_H_
