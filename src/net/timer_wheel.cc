#include "net/timer_wheel.h"

#include <cassert>

namespace mk::net {

constexpr unsigned TimerWheel::kLevelShift[TimerWheel::kLevels];

TimerWheel::TimerId TimerWheel::Schedule(Cycles delay, std::function<void()> fn) {
  if (armed_ == 0) {
    // Nothing linked: safe to resynchronize the wheel origin so placement
    // deltas stay small after long idle stretches.
    current_tick_ = exec_.now() >> tick_shift_;
  }
  // Round the deadline UP to a tick boundary: truncating would place a
  // deadline of (k ticks + epsilon) on tick k and fire it epsilon early.
  const Cycles deadline = exec_.now() + delay;
  std::uint64_t expiry = (deadline + (Cycles{1} << tick_shift_) - 1) >> tick_shift_;
  if (expiry <= current_tick_) {
    expiry = current_tick_ + 1;  // never fire inside the caller's frame
  }
  Node* n;
  if (!free_.empty()) {
    n = free_.back();
    free_.pop_back();
  } else {
    pool_.emplace_back();
    n = &pool_.back();
    n->index = static_cast<std::uint32_t>(pool_.size() - 1);
  }
  n->fn = std::move(fn);
  n->expiry_tick = expiry;
  Link(n);
  ++armed_;
  ++scheduled_;
  ArmWake();
  return (static_cast<std::uint64_t>(n->gen) << 32) | (n->index + 1);
}

bool TimerWheel::Cancel(TimerId id) {
  if (id == kNoTimer) {
    return false;
  }
  std::uint32_t index = static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (index >= pool_.size()) {
    return false;
  }
  Node* n = &pool_[index];
  if (n->gen != gen || n->level < 0) {
    return false;  // already fired, already cancelled, or slot reused
  }
  Unlink(n);
  FreeNode(n);
  --armed_;
  ++cancelled_;
  // A wake armed for this timer's tick fires as a no-op; nothing to disarm.
  return true;
}

void TimerWheel::Link(Node* n) {
  std::uint64_t delta = n->expiry_tick - current_tick_;
  // Placement uses a clamped tick for deadlines past the wheel span — the
  // true expiry is kept on the node, so the timer re-cascades until it fits.
  std::uint64_t place = n->expiry_tick;
  if (delta >= kSpanTicks) {
    place = current_tick_ + kSpanTicks - 1;
    delta = kSpanTicks - 1;
  }
  int level;
  std::size_t slot;
  std::size_t base;
  if (delta < (std::uint64_t{1} << kLevelShift[1])) {
    level = 0;
    slot = static_cast<std::size_t>(place & (kL0Slots - 1));
    base = 0;
    occ_l0_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  } else {
    level = delta < (std::uint64_t{1} << kLevelShift[2])   ? 1
            : delta < (std::uint64_t{1} << kLevelShift[3]) ? 2
                                                           : 3;
    slot = static_cast<std::size_t>((place >> kLevelShift[level]) & (kLxSlots - 1));
    base = kL0Slots + static_cast<std::size_t>(level - 1) * kLxSlots;
    occ_up_[level - 1] |= std::uint64_t{1} << slot;
  }
  std::size_t li = base + slot;
  n->level = static_cast<std::int8_t>(level);
  n->slot = static_cast<std::int16_t>(slot);
  n->prev = tail_[li];
  n->next = nullptr;
  if (tail_[li] != nullptr) {
    tail_[li]->next = n;
  } else {
    head_[li] = n;
  }
  tail_[li] = n;
}

void TimerWheel::Unlink(Node* n) {
  assert(n->level >= 0);
  std::size_t slot = static_cast<std::size_t>(n->slot);
  std::size_t li = n->level == 0
                       ? slot
                       : kL0Slots + static_cast<std::size_t>(n->level - 1) * kLxSlots +
                             slot;
  if (n->prev != nullptr) {
    n->prev->next = n->next;
  } else {
    head_[li] = n->next;
  }
  if (n->next != nullptr) {
    n->next->prev = n->prev;
  } else {
    tail_[li] = n->prev;
  }
  if (head_[li] == nullptr) {
    if (n->level == 0) {
      occ_l0_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    } else {
      occ_up_[n->level - 1] &= ~(std::uint64_t{1} << slot);
    }
  }
  n->prev = n->next = nullptr;
  n->level = -1;
}

void TimerWheel::FreeNode(Node* n) {
  n->fn = nullptr;
  ++n->gen;  // invalidate outstanding ids
  free_.push_back(n);
}

std::uint64_t TimerWheel::NextDueTick() const {
  std::uint64_t best = kNoDue;
  // L0: exact due ticks in (current_tick_, current_tick_ + 256]. Scan the
  // occupancy bitmap from the slot after current, wrapping once.
  {
    std::size_t start = static_cast<std::size_t>((current_tick_ + 1) & (kL0Slots - 1));
    for (std::size_t k = 0; k < kL0Slots; ++k) {
      std::size_t slot = (start + k) & (kL0Slots - 1);
      if ((occ_l0_[slot >> 6] >> (slot & 63)) & 1) {
        best = current_tick_ + 1 + k;
        break;
      }
      // Skip whole empty words when aligned.
      if ((slot & 63) == 0 && occ_l0_[slot >> 6] == 0 && k + 63 < kL0Slots) {
        k += 63;
      }
    }
  }
  // Upper levels: the due point is the start of the next occupied slot —
  // that's where the cascade (and any exact L0 fire it feeds) happens.
  for (int level = 1; level < kLevels; ++level) {
    std::uint64_t word = occ_up_[level - 1];
    if (word == 0) {
      continue;
    }
    std::uint64_t base = current_tick_ >> kLevelShift[level];
    for (std::uint64_t k = 1; k <= kLxSlots; ++k) {
      std::size_t slot = static_cast<std::size_t>((base + k) & (kLxSlots - 1));
      if ((word >> slot) & 1) {
        std::uint64_t due = (base + k) << kLevelShift[level];
        if (due < best) {
          best = due;
        }
        break;
      }
    }
  }
  return best;
}

void TimerWheel::AdvanceTo(std::uint64_t target_tick) {
  while (current_tick_ < target_tick) {
    std::uint64_t next = NextDueTick();
    if (next == kNoDue || next > target_tick) {
      current_tick_ = target_tick;
      return;
    }
    current_tick_ = next;
    // Cascade deepest-first at level boundaries, so a timer can fall through
    // several levels in one step and still land in its exact L0 slot.
    for (int level = kLevels - 1; level >= 1; --level) {
      if ((next & ((std::uint64_t{1} << kLevelShift[level]) - 1)) == 0) {
        CascadeSlot(level,
                    static_cast<std::size_t>((next >> kLevelShift[level]) &
                                             (kLxSlots - 1)));
      }
    }
    FireSlot(static_cast<std::size_t>(next & (kL0Slots - 1)));
  }
}

void TimerWheel::CascadeSlot(int level, std::size_t slot) {
  std::size_t li = kL0Slots + static_cast<std::size_t>(level - 1) * kLxSlots + slot;
  Node* n = head_[li];
  if (n == nullptr) {
    return;
  }
  head_[li] = tail_[li] = nullptr;
  occ_up_[level - 1] &= ~(std::uint64_t{1} << slot);
  while (n != nullptr) {
    Node* next = n->next;
    n->prev = n->next = nullptr;
    n->level = -1;
    Link(n);  // re-place by exact expiry relative to the new current_tick_
    ++cascades_;
    n = next;
  }
}

void TimerWheel::FireSlot(std::size_t slot) {
  // Every node in an L0 slot shares one expiry tick (the window is 256 ticks
  // wide and slots are expiry mod 256), so the whole list is due. Fire nodes
  // head-first, re-reading the head each time: a callback may cancel later
  // timers in this very slot or schedule new ones (a new same-slot timer is
  // 256 ticks out and links after current_tick_ advanced, so it cannot be
  // confused with a due node — its expiry differs and Link would have placed
  // it in L1).
  while (head_[slot] != nullptr && head_[slot]->expiry_tick == current_tick_) {
    Node* n = head_[slot];
    Unlink(n);
    --armed_;
    ++fired_;
    std::function<void()> fn = std::move(n->fn);
    FreeNode(n);
    fn();
  }
}

void TimerWheel::ArmWake() {
  if (armed_ == 0) {
    return;
  }
  std::uint64_t due = NextDueTick();
  assert(due != kNoDue);
  Cycles at = due << tick_shift_;
  if (at < exec_.now()) {
    at = exec_.now();
  }
  if (wake_pending_ && wake_at_ <= at) {
    return;  // an earlier-or-equal wake is already in flight
  }
  wake_at_ = at;
  wake_pending_ = true;
  std::uint64_t seq = ++wake_seq_;
  exec_.CallAt(at, [this, seq] { OnWake(seq); });
}

void TimerWheel::OnWake(std::uint64_t seq) {
  if (seq != wake_seq_) {
    return;  // superseded by an earlier re-arm; that wake owns the advance
  }
  wake_pending_ = false;
  AdvanceTo(exec_.now() >> tick_shift_);
  ArmWake();
}

}  // namespace mk::net
