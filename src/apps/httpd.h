// HTTP/1.0 web server for the section 5.4 workload: serves a static page and
// web-based SELECT queries forwarded to the database process over URPC.
#ifndef MK_APPS_HTTPD_H_
#define MK_APPS_HTTPD_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "apps/db.h"
#include "hw/machine.h"
#include "net/stack.h"
#include "sim/event.h"
#include "sim/task.h"

namespace mk::apps {

using sim::Cycles;
using sim::Task;

struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;  // after '?'
};

// Cap on buffered request bytes before the server gives up on finding a
// request terminator and answers 400: an attacker (or a corrupted length
// field) must not be able to grow a connection's buffer without bound.
inline constexpr std::size_t kMaxRequestBytes = 8192;

struct HttpResponse {
  int status = 200;
  std::string body;
  std::string content_type = "text/html";
};

// Parses the request line of an HTTP/1.0 request; false if malformed.
bool ParseHttpRequest(const std::string& text, HttpRequest* out);

// Renders a response with headers.
std::string RenderHttpResponse(const HttpResponse& resp);

// HTTP/1.1 variant: advertises keep-alive (or an explicit close on the
// connection's last response). The legacy HTTP/1.0 renderer above is
// untouched — golden transcripts depend on its exact bytes.
std::string RenderHttpResponse11(const HttpResponse& resp, bool keep_alive);

// Incremental request framer for keep-alive connections: bytes arrive in
// arbitrary segment-sized chunks, possibly carrying several pipelined
// requests back to back, possibly splitting one request (or its "\r\n\r\n"
// terminator) across chunk boundaries. The framer's contract is that the
// sequence of popped requests depends only on the concatenated byte stream,
// never on where the chunk boundaries fell (the fuzz test asserts this).
// A stream that exceeds kMaxRequestBytes without completing a request sets
// overflowed() and the connection is answered 400 and closed.
class HttpRequestFramer {
 public:
  void Append(const std::uint8_t* data, std::size_t len);
  void Append(const std::string& chunk) {
    Append(reinterpret_cast<const std::uint8_t*>(chunk.data()), chunk.size());
  }
  // True if a complete request ("\r\n\r\n"-terminated) is buffered.
  bool HasRequest() const { return next_end_ != std::string::npos; }
  // Pops the first complete request (terminator included); false if none.
  bool PopRequest(std::string* out);
  bool overflowed() const { return overflowed_; }
  std::size_t buffered() const { return buf_.size(); }

 private:
  void Rescan(std::size_t from);
  std::string buf_;
  std::size_t next_end_ = std::string::npos;  // offset one past "\r\n\r\n"
  std::size_t scan_from_ = 0;                 // resume point for the terminator scan
  bool overflowed_ = false;
};

// The static page: paper serves a 4.1 KB page.
std::string StaticIndexPage();

class HttpServer {
 public:
  // `db_query` runs a SQL string on the database service (usually an URPC
  // round trip to the DB core) and returns the rendered rows; empty handler
  // disables /query.
  using DbQueryFn = std::function<Task<std::string>(std::string sql)>;

  // `db_exec` runs a write (client write id + SQL) on the data tier; empty
  // handler disables /buy. The wid rides the URL so retries at any layer
  // stay idempotent end to end.
  using DbExecFn = std::function<Task<std::string>(std::uint64_t wid, std::string sql)>;

  // `request_cost` is the per-request application work (parsing, routing,
  // buffer management, connection bookkeeping) charged on the server core;
  // the default is calibrated against the paper's measured service rate.
  HttpServer(hw::Machine& machine, net::NetStack& stack, std::uint16_t port,
             DbQueryFn db_query = nullptr, Cycles request_cost = 60000);

  // Explicit overload policy. The legacy discipline (all fields zero) spawns
  // one unbounded handler per accepted connection — under overload every
  // request gets slower until clients time out, a collapse. With `workers` >
  // 0 accepted connections enter a bounded admission queue drained by that
  // many handler tasks; a connection arriving to a full queue is answered 503
  // immediately (shed-by-queue-full), and one that waited longer than
  // `queue_deadline` is answered 503 at dequeue instead of being served
  // late (shed-by-deadline). Shedding keeps served-request latency bounded
  // while a degraded shard carries more than its share of load.
  struct Admission {
    int workers = 0;            // 0 = legacy spawn-per-connection
    int max_pending = 0;        // admission-queue cap; 0 = unbounded
    Cycles queue_deadline = 0;  // max queue wait before shedding; 0 = never
  };
  void SetAdmission(Admission a) { admission_ = a; }

  // HTTP/1.1 keep-alive serving discipline. Off (the default) preserves the
  // legacy one-request-per-connection HTTP/1.0 flow byte for byte. On, a
  // connection serves up to `max_requests` requests (0 = unlimited), closes
  // after `idle_timeout` cycles with no request in flight, allows at most
  // `max_pipeline` already-complete pipelined requests queued at once
  // (excess closes the connection after serving that many), and gives each
  // request `header_deadline` cycles from its first byte to its terminator —
  // the slowloris defense: a trickler's total budget, not a per-byte one.
  // Deadline expiry answers 408 and counts as a shed (kRecoverShed cause 2).
  struct KeepAlive {
    bool enabled = false;
    int max_requests = 0;
    Cycles idle_timeout = 0;    // 0 = never idle out
    int max_pipeline = 8;
    Cycles header_deadline = 0; // 0 = no progress deadline
  };
  void SetKeepAlive(KeepAlive k) { keep_ = k; }

  // Enables the /buy?wid=N&sql=... write route (the TPC-W buy leg).
  void SetDbExec(DbExecFn fn) { db_exec_ = std::move(fn); }

  // Accept loop: serves connections until the stack shuts down. Spawn this.
  Task<> Serve();

  // Handles one already-parsed request (also used by the loopback bench).
  Task<HttpResponse> Handle(const HttpRequest& req);

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t shed_queue_full() const { return shed_queue_full_; }
  std::uint64_t shed_deadline() const { return shed_deadline_; }
  std::uint64_t shed_progress() const { return shed_progress_; }
  std::uint64_t idle_closes() const { return idle_closes_; }
  std::uint64_t budget_closes() const { return budget_closes_; }
  std::uint64_t pipeline_closes() const { return pipeline_closes_; }
  std::uint64_t bad_requests() const { return bad_requests_; }

 private:
  Task<> ServeConnection(net::NetStack::TcpConn* conn);
  Task<> ServeConnectionKeepAlive(net::NetStack::TcpConn* conn);
  // Answers 503 and closes; the cheap path that keeps shedding graceful.
  Task<> ShedConnection(net::NetStack::TcpConn* conn);
  // Admission-queue drainer; `workers` of these run when the policy is on.
  Task<> Worker();

  hw::Machine& machine_;
  net::NetStack& stack_;
  std::uint16_t port_;
  DbQueryFn db_query_;
  DbExecFn db_exec_;
  Cycles request_cost_;
  Admission admission_;
  KeepAlive keep_;
  std::deque<std::pair<net::NetStack::TcpConn*, Cycles>> pending_;
  sim::Event pending_ready_;
  std::uint64_t requests_served_ = 0;
  std::uint64_t shed_queue_full_ = 0;
  std::uint64_t shed_deadline_ = 0;
  std::uint64_t shed_progress_ = 0;    // slowloris: progress deadline → 408
  std::uint64_t idle_closes_ = 0;      // keep-alive idle timeout fired
  std::uint64_t budget_closes_ = 0;    // per-connection request budget hit
  std::uint64_t pipeline_closes_ = 0;  // pipeline depth exceeded
  std::uint64_t bad_requests_ = 0;     // malformed or oversized → 400
};

// Builds the TPC-W-like browsing database (items and authors tables).
void PopulateTpcw(Database* db, int items, std::uint64_t seed = 7);

// A TPC-W-like SELECT for item detail browsing.
std::string TpcwQuery(int item_id);

}  // namespace mk::apps

#endif  // MK_APPS_HTTPD_H_
