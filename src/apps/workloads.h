// Compute-bound workloads for the Figure 9 experiment (section 5.3):
// NAS-like CG, FT, IS kernels and SPLASH-like Barnes-Hut and radiosity.
//
// Each workload runs the real algorithm on host data (the results are
// checksummed and verified by tests) while charging the simulated machine
// for the computation (cycles per floating-point/integer operation) and the
// communication (coherent accesses to the shared arrays: vectors read across
// chunk boundaries, contended histogram lines, all-to-all transposes, the
// shared tree, the work queue lock). Scaling behavior — barrier costs,
// reduction-line contention, serial phases — therefore emerges from the
// machine model exactly as the paper's discussion of Figure 9 describes.
#ifndef MK_APPS_WORKLOADS_H_
#define MK_APPS_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "proc/openmp.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::apps {

using sim::Cycles;
using sim::Task;

struct WorkloadResult {
  Cycles cycles = 0;     // simulated execution time
  double checksum = 0;   // from the real computation; verified in tests
};

struct WorkloadParams {
  int iterations = 5;          // outer iterations / time steps
  std::int64_t size = 1 << 14; // problem size (meaning is per workload)
  std::uint64_t seed = 42;
};

// NAS CG: conjugate gradient on a random sparse symmetric diagonally-dominant
// matrix. Per iteration: one sparse mat-vec plus two dot-product reductions,
// each ending in a barrier. Checksum: final residual norm.
Task<WorkloadResult> RunCg(proc::OmpRuntime& omp, WorkloadParams params);

// NAS FT: iterated 1-D FFT with a block transpose between compute phases —
// the all-to-all exchange of the 3-D FFT. Checksum: sum of magnitudes.
Task<WorkloadResult> RunFt(proc::OmpRuntime& omp, WorkloadParams params);

// NAS IS: bucket integer sort. Per iteration: private histograms merged into
// a shared, heavily contended bucket array, serial prefix sum, parallel
// permute. Checksum: verifies sortedness and key preservation.
Task<WorkloadResult> RunIs(proc::OmpRuntime& omp, WorkloadParams params);

// SPLASH-2 Barnes-Hut: octree N-body. Per step: serial tree build (the
// Amdahl fraction), parallel force computation over the shared read-only
// tree, barrier, parallel position update. Checksum: center-of-mass drift.
Task<WorkloadResult> RunBarnesHut(proc::OmpRuntime& omp, WorkloadParams params);

// SPLASH-2 radiosity: iterative energy redistribution over patches with a
// mutex-protected task queue (lock contention) and shared patch lines.
// Checksum: total radiosity.
Task<WorkloadResult> RunRadiosity(proc::OmpRuntime& omp, WorkloadParams params);

// Name -> runner table for the bench/examples.
struct WorkloadEntry {
  const char* name;
  Task<WorkloadResult> (*run)(proc::OmpRuntime&, WorkloadParams);
};
const std::vector<WorkloadEntry>& AllWorkloads();

}  // namespace mk::apps

#endif  // MK_APPS_WORKLOADS_H_
