// Partitioned read-write store: the write path dbshard never had.
//
// DbReplicaCluster scales *reads* by giving every shard a read-only replica;
// production traffic writes. ReplicatedStore extends the same placement idea
// to a leader/follower group per shard:
//
//   web core ──urpc/PacketChannel──► leader replica ──ship──► follower(s)
//                                        │ WAL append (fs::ReplicatedFs
//                                        ▼  one-phase collective)
//                                    replicated log
//
// A write (client-unique write id + SQL) reaches the shard's leader, which
// 1. dedups by write id (a retry of a committed-but-unacked write answers
//    "dup", never applies twice),
// 2. appends [lsn | term | wid sql] to the shard's WAL — a replicated-fs
//    mutation, so completion means the record is durable on every online
//    core's fs replica,
// 3. applies locally and ships the record to each live follower over a
//    PacketChannel,
// 4. acks the client only after every caught-up follower has acked its
//    applied lsn back over URPC (commit = follower durability).
//
// Failover reuses recover::MembershipService: when a view change reports a
// dead replica core, the most-caught-up live replica (max applied lsn, ties
// to the lowest slot) is promoted, the group's term becomes the membership
// epoch, and the new leader truncates the WAL suffix beyond its applied lsn
// (records that could not have committed, by the commit rule). Terms fence
// stale leaders twice over: a deposed leader's in-flight ships carry an old
// term and are dropped by survivors, and its serve loop re-checks the term
// before acking (fail-stop halting already cut the reply path — the term
// check is the logical-supersession net). A dead replica is respawned on the
// shard's spare core from the boot image plus WAL replay, gated caught_up
// like DbReplicaCluster's respawn.
//
// Reads are served by the leader (leader-local, so they always observe every
// committed write); the browse side of the TPC-W mix rides the same channel
// pair dbshard uses.
#ifndef MK_APPS_STORE_H_
#define MK_APPS_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/db.h"
#include "fs/wal.h"
#include "hw/machine.h"
#include "net/packet_channel.h"
#include "recover/recover.h"
#include "sim/event.h"
#include "sim/task.h"
#include "urpc/channel.h"

namespace mk::apps {

using sim::Cycles;
using sim::Task;

// One shard's serving group: the web core that fronts it, the replica cores
// (slot 0 boots as leader), and a spare for respawn after a kill.
struct StorePlacement {
  int web_core = 0;
  std::vector<int> replica_cores;
  int spare_core = -1;
};

class ReplicatedStore {
 public:
  // `source` is the boot image every replica starts from (populate the TPC-W
  // tables before constructing); WAL replay reproduces everything after boot.
  // Each shard's WAL path is picked so its fs sequencer is the shard's web
  // core — a core the replica-kill fault plans never touch, keeping the log's
  // ordering authority alive across failover (see DESIGN.md §13).
  ReplicatedStore(hw::Machine& machine, fs::ReplicatedFs& fs, const Database& source,
                  std::vector<StorePlacement> placements);

  // Creates the WAL files (one replicated-fs collective per shard) and spawns
  // every serve loop and replication pump. Call once after boot.
  Task<> Start();

  int num_shards() const { return static_cast<int>(groups_.size()); }
  const StorePlacement& placement(int shard) const {
    return groups_[static_cast<std::size_t>(shard)]->placement;
  }

  // Web-side read: runs `sql` on the shard's current leader, returns rendered
  // rows. Leader-local reads observe every committed write.
  Task<std::string> Query(int shard, std::string sql);

  // Web-side write: executes `sql` under client write id `wid`. Retries of
  // the same logical write MUST reuse `wid`; a write that committed but lost
  // its ack answers "dup" instead of applying twice. Returns "ok <lsn>",
  // "dup", or "error: ...".
  Task<std::string> Execute(int shard, std::uint64_t wid, std::string sql);

  // Membership subscriber body: marks dead replicas, promotes on leader
  // death, respawns onto the spare. Wire it up as
  //   membership.Subscribe([&](const recover::View& v, int dead) {
  //     return store.HandleViewChange(v, dead); });
  Task<> HandleViewChange(const recover::View& view, int dead_core);

  // Poisons every serve loop and replication pump.
  Task<> Shutdown();

  // --- Introspection (bench ledger + tests) ---
  int leader_slot(int shard) const { return group(shard).leader_slot; }
  std::uint64_t term(int shard) const { return group(shard).term; }
  std::uint64_t last_lsn(int shard) const { return group(shard).last_lsn; }
  std::uint64_t incarnation(int shard) const { return group(shard).incarnation; }
  std::uint64_t reads_served(int shard) const { return group(shard).reads_served; }
  std::uint64_t writes_committed(int shard) const { return group(shard).writes_committed; }
  std::uint64_t writes_dup(int shard) const { return group(shard).writes_dup; }
  std::uint64_t writes_rejected(int shard) const { return group(shard).writes_rejected; }
  std::uint64_t writes_fenced(int shard) const { return group(shard).writes_fenced; }
  std::uint64_t records_shipped(int shard) const { return group(shard).records_shipped; }
  std::uint64_t stale_ships(int shard) const { return group(shard).stale_ships; }
  std::uint64_t truncated_records(int shard) const { return group(shard).truncated; }
  std::uint64_t rpc_timeouts() const { return rpc_timeouts_; }
  std::uint64_t promotions() const { return promotions_; }
  std::uint64_t respawns() const { return respawns_; }
  std::uint64_t catchups() const { return catchups_; }

  int num_slots(int shard) const {
    return static_cast<int>(group(shard).replicas.size());
  }
  bool replica_alive(int shard, int slot) const {
    return group(shard).replicas[static_cast<std::size_t>(slot)]->alive;
  }
  bool replica_caught_up(int shard, int slot) const {
    return group(shard).replicas[static_cast<std::size_t>(slot)]->caught_up;
  }
  std::uint64_t replica_applied_lsn(int shard, int slot) const {
    return group(shard).replicas[static_cast<std::size_t>(slot)]->applied_lsn;
  }
  std::size_t replica_table_rows(int shard, int slot, const std::string& table) const {
    return group(shard).replicas[static_cast<std::size_t>(slot)]->db.TableRows(table);
  }
  std::size_t replica_distinct_wids(int shard, int slot) const {
    return group(shard).replicas[static_cast<std::size_t>(slot)]->applied_wids.size();
  }
  int replica_core(int shard, int slot) const {
    return group(shard).replicas[static_cast<std::size_t>(slot)]->core;
  }

  // Test hook: force a term bump so the pre-ack fence trips without waiting
  // for a real view change (exercises "a stale leader never acks").
  void ForceTermBumpForTest(int shard) {
    Group& g = *groups_[static_cast<std::size_t>(shard)];
    ++g.term;
    g.commit_ev.Signal();
  }

 private:
  struct Replica {
    Replica(hw::Machine& m, int web_core, int core_in, const Database& src)
        : core(core_in), db(src), requests(m, web_core, core_in),
          replies(m, core_in, web_core, net::PacketChannel::Options{}) {}
    int core;
    Database db;
    std::uint64_t applied_lsn = 0;
    std::uint64_t acked_lsn = 0;   // leader-side view of this follower
    std::uint64_t term_seen = 0;   // fences out deposed leaders' late ships
    // Write-id dedup (a unique index), recording each write's engine outcome
    // ("" = applied, else the deterministic rejection message) so a retry of
    // a rejected write replays the error instead of claiming "dup" — like
    // ramfs's AppliedMark answers a redelivery with the recorded result.
    std::map<std::uint64_t, std::string> applied_wids;
    bool alive = true;
    bool caught_up = true;  // false while a respawn replays the WAL
    urpc::Channel requests;
    net::PacketChannel replies;
  };

  // A shipping pair for one (leader, follower) assignment. Links are never
  // destroyed while the store lives (parked pumps reference them); a
  // superseded link is just deactivated.
  struct Link {
    Link(hw::Machine& m, int leader_core, Replica* f)
        : follower(f), ship(m, leader_core, f->core, net::PacketChannel::Options{}),
          acks(m, f->core, leader_core) {}
    Replica* follower;
    bool active = true;
    net::PacketChannel ship;
    urpc::Channel acks;
  };

  struct Group {
    Group(hw::Machine& m, StorePlacement p, fs::ReplicatedFs& fs, std::string wal_path)
        : placement(std::move(p)), wal(fs, std::move(wal_path)), rpc_slot(m.exec(), 1),
          commit_ev(m.exec()) {}
    StorePlacement placement;
    fs::Wal wal;
    std::vector<std::unique_ptr<Replica>> replicas;  // slot-indexed
    std::vector<std::unique_ptr<Replica>> retired;   // respawn keeps the dead alive
    std::vector<std::unique_ptr<Link>> links;
    int leader_slot = 0;
    std::uint64_t term = 0;      // membership epoch at last promotion (0 at boot)
    std::uint64_t last_lsn = 0;  // leader's last assigned lsn
    std::uint64_t incarnation = 0;
    bool spare_used = false;
    // Request nonce: replies carry it back so a web-side retry (its first
    // attempt timed out while the leader's commit stalled) can discard the
    // late reply to the superseded attempt instead of mis-pairing it.
    std::uint64_t req_nonce = 0;
    sim::Semaphore rpc_slot;  // one outstanding web RPC per shard
    sim::Event commit_ev;     // ack progress / membership change wakeups
    std::uint64_t reads_served = 0;
    std::uint64_t writes_committed = 0;
    std::uint64_t writes_dup = 0;
    std::uint64_t writes_rejected = 0;
    std::uint64_t writes_fenced = 0;
    std::uint64_t records_shipped = 0;
    std::uint64_t stale_ships = 0;
    std::uint64_t truncated = 0;
  };

  const Group& group(int shard) const { return *groups_[static_cast<std::size_t>(shard)]; }

  // One replica's server loop (web-facing requests). Bound to the Replica
  // object, not the slot: a respawn spawns a fresh loop for the new object.
  Task<> ServeReplica(Group& g, Replica* r);
  Task<std::string> HandleWrite(Group& g, Replica* r, std::uint64_t wid,
                                const std::string& sql);
  // Follower-side: receives shipped records, applies in lsn order (gap-fill
  // from the WAL), acks its applied lsn.
  Task<> ApplyLoop(Group& g, Link* link);
  // Leader-side: drains follower acks, advances acked_lsn, wakes commits.
  Task<> AckPump(Group& g, Link* link);
  // Respawned-replica WAL replay until it reaches the leader's last lsn.
  Task<> CatchUp(Group& g, Replica* r);

  // Applies one record if it is next in lsn order; returns the scan cost to
  // charge (or 0 if skipped). Host-side only — no awaits between the check
  // and the state update, so concurrent apply paths cannot interleave.
  static std::uint64_t ApplyRecord(Replica* r, const fs::WalRecord& rec);

  void MakeLink(Group& g, Replica* follower);
  Task<std::string> RoundTrip(Group& g, bool is_write, std::uint64_t wid,
                              const std::string& sql);

  hw::Machine& machine_;
  fs::ReplicatedFs& fs_;
  Database source_;  // boot image (respawn base; WAL replay rebuilds the rest)
  std::vector<std::unique_ptr<Group>> groups_;
  std::uint64_t rpc_timeouts_ = 0;
  std::uint64_t promotions_ = 0;
  std::uint64_t respawns_ = 0;
  std::uint64_t catchups_ = 0;
};

}  // namespace mk::apps

#endif  // MK_APPS_STORE_H_
