#include "apps/db.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace mk::apps {

// --- Tokenizer (file-local; forward-declared in db.h for member signatures) ---

class DbTokenizer {
 public:
  explicit DbTokenizer(const std::string& sql) : s(sql) {}

  // Returns the next token: identifiers/keywords are upper-cased except
  // quoted strings; punctuation is single characters; "" at end.
  std::string Next() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
    if (pos >= s.size()) {
      return "";
    }
    char c = s[pos];
    if (c == '\'') {
      // String literal (single quotes; '' escapes a quote).
      std::string out = "'";
      ++pos;
      while (pos < s.size()) {
        if (s[pos] == '\'' && pos + 1 < s.size() && s[pos + 1] == '\'') {
          out += '\'';
          pos += 2;
          continue;
        }
        if (s[pos] == '\'') {
          ++pos;
          break;
        }
        out += s[pos++];
      }
      return out;  // leading quote marks it a string literal
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-') {
      std::string out;
      while (pos < s.size() && (std::isalnum(static_cast<unsigned char>(s[pos])) ||
                                s[pos] == '_' || s[pos] == '-')) {
        out += static_cast<char>(std::toupper(static_cast<unsigned char>(s[pos])));
        ++pos;
      }
      return out;
    }
    if ((c == '<' || c == '>' || c == '!') && pos + 1 < s.size() && s[pos + 1] == '=') {
      pos += 2;
      return std::string{c, '='};
    }
    ++pos;
    return std::string(1, c);
  }

  std::string Peek() {
    std::size_t saved = pos;
    std::string t = Next();
    pos = saved;
    return t;
  }

  const std::string& s;
  std::size_t pos = 0;
};

namespace {

bool IsIntLiteral(const std::string& t) {
  if (t.empty() || t[0] == '\'') {
    return false;
  }
  std::size_t i = t[0] == '-' ? 1 : 0;
  if (i >= t.size()) {
    return false;
  }
  for (; i < t.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(t[i]))) {
      return false;
    }
  }
  return true;
}

// Overflow-safe integer parse. The old std::stoll threw std::out_of_range on
// a 20-digit literal, and nothing caught it — one malformed INSERT through
// the write path killed the whole process.
bool ParseInt64(const std::string& t, std::int64_t* out) {
  auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), *out);
  return ec == std::errc() && ptr == t.data() + t.size();
}

std::optional<DbValue> LiteralValue(const std::string& t) {
  if (!t.empty() && t[0] == '\'') {
    return DbValue{t.substr(1)};
  }
  std::int64_t v = 0;
  if (!ParseInt64(t, &v)) {
    return std::nullopt;
  }
  return DbValue{v};
}

int Compare(const DbValue& a, const DbValue& b) {
  if (a.index() != b.index()) {
    return a.index() < b.index() ? -1 : 1;
  }
  if (std::holds_alternative<std::int64_t>(a)) {
    auto x = std::get<std::int64_t>(a);
    auto y = std::get<std::int64_t>(b);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  const auto& x = std::get<std::string>(a);
  const auto& y = std::get<std::string>(b);
  return x < y ? -1 : (x > y ? 1 : 0);
}

bool ApplyOp(const std::string& op, int cmp) {
  if (op == "=") return cmp == 0;
  if (op == "!=") return cmp != 0;
  if (op == "<") return cmp < 0;
  if (op == "<=") return cmp <= 0;
  if (op == ">") return cmp > 0;
  if (op == ">=") return cmp >= 0;
  return false;
}

}  // namespace

std::string DbValueToString(const DbValue& v) {
  if (std::holds_alternative<std::int64_t>(v)) {
    return std::to_string(std::get<std::int64_t>(v));
  }
  return std::get<std::string>(v);
}

int Database::Table::ColumnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool Database::WhereClause::Matches(const std::vector<DbValue>& row) const {
  if (col < 0) {
    return true;
  }
  return ApplyOp(op, Compare(row[static_cast<std::size_t>(col)], val));
}

std::optional<DbError> Database::ParseWhere(DbTokenizer& tok, const Table& table,
                                            WhereClause* out) {
  std::string col = tok.Next();
  out->col = table.ColumnIndex(col);
  if (out->col < 0) {
    return DbError{"no such column: " + col};
  }
  out->op = tok.Next();
  std::string lit = tok.Next();
  if (lit.empty() || (!IsIntLiteral(lit) && lit[0] != '\'')) {
    return DbError{"bad literal in WHERE"};
  }
  std::optional<DbValue> v = LiteralValue(lit);
  if (!v.has_value()) {
    return DbError{"integer literal out of range: " + lit};
  }
  out->val = std::move(*v);
  return std::nullopt;
}

std::optional<DbError> Database::Exec(const std::string& sql) {
  // Per-statement counters: stale values from an earlier UPDATE/DELETE must
  // not leak into the next statement's accounting (or its simulated cost).
  rows_changed_ = 0;
  last_exec_scanned_ = 0;
  DbTokenizer tok(sql);
  std::string verb = tok.Next();
  if (verb == "CREATE") {
    if (tok.Next() != "TABLE") {
      return DbError{"expected TABLE"};
    }
    std::string name = tok.Next();
    if (name.empty() || tok.Next() != "(") {
      return DbError{"expected table name and column list"};
    }
    Table table;
    while (true) {
      std::string col = tok.Next();
      std::string type = tok.Next();
      if (col.empty() || (type != "INT" && type != "TEXT")) {
        return DbError{"bad column definition"};
      }
      table.columns.push_back(Column{col, type == "INT"});
      std::string sep = tok.Next();
      if (sep == ")") {
        break;
      }
      if (sep != ",") {
        return DbError{"expected , or )"};
      }
    }
    if (tables_.count(name) != 0) {
      return DbError{"table exists: " + name};
    }
    tables_[name] = std::move(table);
    return std::nullopt;
  }
  if (verb == "INSERT") {
    if (tok.Next() != "INTO") {
      return DbError{"expected INTO"};
    }
    std::string name = tok.Next();
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return DbError{"no such table: " + name};
    }
    if (tok.Next() != "VALUES" || tok.Next() != "(") {
      return DbError{"expected VALUES ("};
    }
    std::vector<DbValue> row;
    while (true) {
      std::string lit = tok.Next();
      if (lit.empty()) {
        return DbError{"unterminated VALUES"};
      }
      std::optional<DbValue> v = LiteralValue(lit);
      if (!v.has_value()) {
        return DbError{"integer literal out of range: " + lit};
      }
      row.push_back(std::move(*v));
      std::string sep = tok.Next();
      if (sep == ")") {
        break;
      }
      if (sep != ",") {
        return DbError{"expected , or )"};
      }
    }
    if (row.size() != it->second.columns.size()) {
      return DbError{"value count mismatch"};
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      bool want_int = it->second.columns[i].is_int;
      if (want_int != std::holds_alternative<std::int64_t>(row[i])) {
        return DbError{"type mismatch in column " + it->second.columns[i].name};
      }
    }
    it->second.rows.push_back(std::move(row));
    ++rows_inserted_;
    return std::nullopt;
  }
  if (verb == "UPDATE") {
    return ExecUpdate(tok);
  }
  if (verb == "DELETE") {
    return ExecDelete(tok);
  }
  return DbError{"unsupported statement: " + verb};
}

// UPDATE t SET col = lit [, col = lit]* [WHERE col op lit]
//
// Two-phase on purpose: matching row indexes are collected against the
// table's pre-statement values first, and assignments run second. Mutating
// while scanning aliases the WHERE column with the SET column — a statement
// like UPDATE items SET i_stock = 0 WHERE i_stock > 0 must evaluate every
// row's predicate against the value it had when the statement began.
std::optional<DbError> Database::ExecUpdate(DbTokenizer& tok) {
  std::string name = tok.Next();
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return DbError{"no such table: " + name};
  }
  Table& table = it->second;
  if (tok.Next() != "SET") {
    return DbError{"expected SET"};
  }
  std::vector<std::pair<int, DbValue>> assignments;
  while (true) {
    std::string col = tok.Next();
    int idx = table.ColumnIndex(col);
    if (idx < 0) {
      return DbError{"no such column: " + col};
    }
    if (tok.Next() != "=") {
      return DbError{"expected = in SET"};
    }
    std::string lit = tok.Next();
    std::optional<DbValue> v = LiteralValue(lit);
    if (lit.empty() || !v.has_value()) {
      return DbError{"bad literal in SET: " + lit};
    }
    if (table.columns[static_cast<std::size_t>(idx)].is_int !=
        std::holds_alternative<std::int64_t>(*v)) {
      return DbError{"type mismatch in column " + col};
    }
    assignments.emplace_back(idx, std::move(*v));
    if (tok.Peek() == ",") {
      tok.Next();
      continue;
    }
    break;
  }
  WhereClause where;
  std::string kw = tok.Next();
  if (kw == "WHERE") {
    if (auto err = ParseWhere(tok, table, &where)) {
      return err;
    }
    kw = tok.Next();
  }
  if (!kw.empty() && kw != ";") {
    return DbError{"trailing tokens: " + kw};
  }
  std::vector<std::size_t> matched;
  last_exec_scanned_ = table.rows.size();
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    if (where.Matches(table.rows[r])) {
      matched.push_back(r);
    }
  }
  for (std::size_t r : matched) {
    for (const auto& [idx, v] : assignments) {
      table.rows[r][static_cast<std::size_t>(idx)] = v;
    }
  }
  rows_changed_ = matched.size();
  return std::nullopt;
}

// DELETE FROM t [WHERE col op lit]
std::optional<DbError> Database::ExecDelete(DbTokenizer& tok) {
  if (tok.Next() != "FROM") {
    return DbError{"expected FROM"};
  }
  std::string name = tok.Next();
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return DbError{"no such table: " + name};
  }
  Table& table = it->second;
  WhereClause where;
  std::string kw = tok.Next();
  if (kw == "WHERE") {
    if (auto err = ParseWhere(tok, table, &where)) {
      return err;
    }
    kw = tok.Next();
  }
  if (!kw.empty() && kw != ";") {
    return DbError{"trailing tokens: " + kw};
  }
  last_exec_scanned_ = table.rows.size();
  std::size_t before = table.rows.size();
  std::erase_if(table.rows,
                [&where](const std::vector<DbValue>& row) { return where.Matches(row); });
  rows_changed_ = before - table.rows.size();
  return std::nullopt;
}

std::variant<Database::ResultSet, DbError> Database::Query(const std::string& sql) const {
  DbTokenizer tok(sql);
  if (tok.Next() != "SELECT") {
    return DbError{"expected SELECT"};
  }
  std::vector<std::string> cols;
  bool star = false;
  while (true) {
    std::string c = tok.Next();
    if (c == "*") {
      star = true;
    } else if (!c.empty()) {
      cols.push_back(c);
    } else {
      return DbError{"bad column list"};
    }
    std::string sep = tok.Peek();
    if (sep == ",") {
      tok.Next();
      continue;
    }
    break;
  }
  if (tok.Next() != "FROM") {
    return DbError{"expected FROM"};
  }
  std::string name = tok.Next();
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return DbError{"no such table: " + name};
  }
  const Table& table = it->second;

  int where_col = -1;
  std::string where_op;
  DbValue where_val;
  int order_col = -1;
  bool order_desc = false;
  std::int64_t limit = -1;

  std::string kw = tok.Next();
  if (kw == "WHERE") {
    std::string col = tok.Next();
    where_col = table.ColumnIndex(col);
    if (where_col < 0) {
      return DbError{"no such column: " + col};
    }
    where_op = tok.Next();
    std::string lit = tok.Next();
    if (lit.empty() || (!IsIntLiteral(lit) && lit[0] != '\'')) {
      return DbError{"bad literal in WHERE"};
    }
    std::optional<DbValue> v = LiteralValue(lit);
    if (!v.has_value()) {
      return DbError{"integer literal out of range: " + lit};
    }
    where_val = std::move(*v);
    kw = tok.Next();
  }
  if (kw == "ORDER") {
    if (tok.Next() != "BY") {
      return DbError{"expected BY"};
    }
    std::string col = tok.Next();
    order_col = table.ColumnIndex(col);
    if (order_col < 0) {
      return DbError{"no such column: " + col};
    }
    if (tok.Peek() == "DESC") {
      tok.Next();
      order_desc = true;
    } else if (tok.Peek() == "ASC") {
      tok.Next();
    }
    kw = tok.Next();
  }
  if (kw == "LIMIT") {
    std::string lit = tok.Next();
    if (!IsIntLiteral(lit) || !ParseInt64(lit, &limit)) {
      return DbError{"bad LIMIT"};
    }
    kw = tok.Next();
  }
  if (!kw.empty() && kw != ";") {
    return DbError{"trailing tokens: " + kw};
  }

  ResultSet rs;
  std::vector<int> proj;
  if (star) {
    for (std::size_t i = 0; i < table.columns.size(); ++i) {
      proj.push_back(static_cast<int>(i));
      rs.columns.push_back(table.columns[i].name);
    }
  } else {
    for (const auto& c : cols) {
      int idx = table.ColumnIndex(c);
      if (idx < 0) {
        return DbError{"no such column: " + c};
      }
      proj.push_back(idx);
      rs.columns.push_back(c);
    }
  }

  std::vector<const std::vector<DbValue>*> selected;
  for (const auto& row : table.rows) {
    ++rs.rows_scanned;
    if (where_col >= 0 &&
        !ApplyOp(where_op, Compare(row[static_cast<std::size_t>(where_col)], where_val))) {
      continue;
    }
    selected.push_back(&row);
  }
  if (order_col >= 0) {
    std::stable_sort(selected.begin(), selected.end(),
                     [order_col, order_desc](const auto* a, const auto* b) {
                       int cmp = Compare((*a)[static_cast<std::size_t>(order_col)],
                                         (*b)[static_cast<std::size_t>(order_col)]);
                       return order_desc ? cmp > 0 : cmp < 0;
                     });
  }
  for (const auto* row : selected) {
    if (limit >= 0 && static_cast<std::int64_t>(rs.rows.size()) >= limit) {
      break;
    }
    std::vector<DbValue> out;
    for (int idx : proj) {
      out.push_back((*row)[static_cast<std::size_t>(idx)]);
    }
    rs.rows.push_back(std::move(out));
  }
  return rs;
}

std::size_t Database::TableRows(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? 0 : it->second.rows.size();
}

std::size_t Database::TotalRows() const {
  std::size_t total = 0;
  for (const auto& [name, table] : tables_) {
    total += table.rows.size();
  }
  return total;
}

bool Database::HasTable(const std::string& name) const { return tables_.count(name) != 0; }

}  // namespace mk::apps
