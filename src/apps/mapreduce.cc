#include "apps/mapreduce.h"

#include <algorithm>
#include <cstdint>

#include "sim/random.h"

namespace mk::apps {
namespace {

using proc::OmpRuntime;
using sim::Addr;

constexpr Cycles kCyclesPerIntOp = 1;

// Allocates one per-thread intermediate bucket region, homed on the package
// of the core the thread is pinned to (the Metis layout: map output never
// leaves the mapper's node until the reduce tree pulls it).
Addr AllocBucket(hw::Machine& m, int core, std::uint64_t bytes) {
  return m.mem().AllocLines(m.topo().PackageOf(core), sim::LinesCovering(0, bytes));
}

// The combining-tree reduce phase, shared by both jobs. At round r thread
// tid combines partner tid + 2^r's bucket into its own (one cross-node pull
// per tree edge); every round ends at the team barrier. merge(dst, src) does
// the host-side combine.
template <typename Merge>
Task<> TreeReduce(OmpRuntime& omp, int tid, int core, const std::vector<Addr>& bucket,
                  std::uint64_t bucket_bytes, std::uint64_t merge_ops,
                  const Merge& merge) {
  hw::Machine& m = omp.machine();
  const int threads = omp.num_threads();
  for (int span = 1; span < threads; span <<= 1) {
    if (tid % (span << 1) == 0 && tid + span < threads) {
      const int partner = tid + span;
      // Pull the partner's bucket across (its lines are homed on the
      // partner's package), combine, and write back into our own bucket.
      co_await m.mem().Read(core, bucket[static_cast<std::size_t>(partner)],
                            bucket_bytes);
      merge(tid, partner);
      co_await m.Compute(core, merge_ops * kCyclesPerIntOp);
      co_await m.mem().Write(core, bucket[static_cast<std::size_t>(tid)], bucket_bytes);
    }
    co_await omp.barrier().Arrive(core);
  }
}

}  // namespace

Task<WorkloadResult> RunWordCount(OmpRuntime& omp, WorkloadParams params) {
  hw::Machine& m = omp.machine();
  constexpr std::int64_t kVocab = 1024;
  const std::int64_t n = params.size;
  const int threads = omp.num_threads();

  // Synthetic corpus: min of two uniforms skews toward low word ids, the
  // Zipf-ish head every word-count corpus has.
  sim::Rng rng(params.seed);
  std::vector<std::uint32_t> words(static_cast<std::size_t>(n));
  for (auto& w : words) {
    w = static_cast<std::uint32_t>(
        std::min(rng.Below(kVocab), rng.Below(kVocab)));
  }
  Addr corpus = m.mem().AllocLines(0, sim::LinesCovering(0, static_cast<std::uint64_t>(n) * 4));

  const std::uint64_t bucket_bytes = kVocab * 8;
  std::vector<Addr> bucket(static_cast<std::size_t>(threads), 0);
  std::vector<std::vector<std::int64_t>> counts(
      static_cast<std::size_t>(threads),
      std::vector<std::int64_t>(static_cast<std::size_t>(kVocab), 0));
  auto merge = [&counts](int dst, int src) {
    auto& d = counts[static_cast<std::size_t>(dst)];
    auto& s = counts[static_cast<std::size_t>(src)];
    for (std::size_t w = 0; w < d.size(); ++w) {
      d[w] += s[w];
    }
  };

  const Cycles t0 = m.exec().now();
  for (int iter = 0; iter < params.iterations; ++iter) {
    for (auto& c : counts) {
      std::fill(c.begin(), c.end(), 0);
    }
    co_await omp.Parallel([&](int tid, int core) -> Task<> {
      auto& local = counts[static_cast<std::size_t>(tid)];
      if (bucket[static_cast<std::size_t>(tid)] == 0) {
        bucket[static_cast<std::size_t>(tid)] = AllocBucket(m, core, bucket_bytes);
      }
      // Map: count word ids from our corpus chunk into the per-core bucket.
      auto range = omp.ChunkOf(n, tid);
      if (range.begin < range.end) {
        co_await m.mem().Read(core, corpus + static_cast<std::uint64_t>(range.begin) * 4,
                              static_cast<std::uint64_t>(range.end - range.begin) * 4);
      }
      for (std::int64_t i = range.begin; i < range.end; ++i) {
        ++local[words[static_cast<std::size_t>(i)]];
      }
      co_await m.Compute(core, static_cast<Cycles>(range.end - range.begin) * 6 *
                                   kCyclesPerIntOp);
      co_await m.mem().Write(core, bucket[static_cast<std::size_t>(tid)], bucket_bytes);
      co_await omp.barrier().Arrive(core);
      // Reduce: combine buckets up the tree; thread 0 ends with the total.
      co_await TreeReduce(omp, tid, core, bucket, bucket_bytes,
                          static_cast<std::uint64_t>(kVocab), merge);
    });
  }

  double checksum = 0;
  for (std::int64_t w = 0; w < kVocab; ++w) {
    checksum += static_cast<double>(counts[0][static_cast<std::size_t>(w)]) *
                static_cast<double>(w % 97 + 1);
  }
  WorkloadResult result;
  result.cycles = m.exec().now() - t0;
  result.checksum = checksum;
  co_return result;
}

Task<WorkloadResult> RunHistogram(OmpRuntime& omp, WorkloadParams params) {
  hw::Machine& m = omp.machine();
  constexpr std::int64_t kBins = 256;
  const std::int64_t n = params.size;
  const int threads = omp.num_threads();

  sim::Rng rng(params.seed);
  std::vector<double> values(static_cast<std::size_t>(n));
  for (auto& v : values) {
    v = rng.NextDouble();
  }
  Addr input = m.mem().AllocLines(0, sim::LinesCovering(0, static_cast<std::uint64_t>(n) * 8));

  const std::uint64_t bucket_bytes = kBins * 8;
  std::vector<Addr> bucket(static_cast<std::size_t>(threads), 0);
  std::vector<std::vector<std::int64_t>> bins(
      static_cast<std::size_t>(threads),
      std::vector<std::int64_t>(static_cast<std::size_t>(kBins), 0));
  auto merge = [&bins](int dst, int src) {
    auto& d = bins[static_cast<std::size_t>(dst)];
    auto& s = bins[static_cast<std::size_t>(src)];
    for (std::size_t b = 0; b < d.size(); ++b) {
      d[b] += s[b];
    }
  };

  const Cycles t0 = m.exec().now();
  for (int iter = 0; iter < params.iterations; ++iter) {
    for (auto& b : bins) {
      std::fill(b.begin(), b.end(), 0);
    }
    co_await omp.Parallel([&](int tid, int core) -> Task<> {
      auto& local = bins[static_cast<std::size_t>(tid)];
      if (bucket[static_cast<std::size_t>(tid)] == 0) {
        bucket[static_cast<std::size_t>(tid)] = AllocBucket(m, core, bucket_bytes);
      }
      auto range = omp.ChunkOf(n, tid);
      if (range.begin < range.end) {
        co_await m.mem().Read(core, input + static_cast<std::uint64_t>(range.begin) * 8,
                              static_cast<std::uint64_t>(range.end - range.begin) * 8);
      }
      for (std::int64_t i = range.begin; i < range.end; ++i) {
        auto b = static_cast<std::int64_t>(values[static_cast<std::size_t>(i)] *
                                           static_cast<double>(kBins));
        ++local[static_cast<std::size_t>(std::min(b, kBins - 1))];
      }
      co_await m.Compute(core, static_cast<Cycles>(range.end - range.begin) * 4 *
                                   kCyclesPerIntOp);
      co_await m.mem().Write(core, bucket[static_cast<std::size_t>(tid)], bucket_bytes);
      co_await omp.barrier().Arrive(core);
      co_await TreeReduce(omp, tid, core, bucket, bucket_bytes,
                          static_cast<std::uint64_t>(kBins), merge);
    });
  }

  double checksum = 0;
  for (std::int64_t b = 0; b < kBins; ++b) {
    checksum += static_cast<double>(bins[0][static_cast<std::size_t>(b)]) *
                static_cast<double>(b + 1);
  }
  WorkloadResult result;
  result.cycles = m.exec().now() - t0;
  result.checksum = checksum;
  co_return result;
}

const std::vector<WorkloadEntry>& MapReduceWorkloads() {
  static const std::vector<WorkloadEntry> kAll = {
      {"wordcount", RunWordCount},
      {"histogram", RunHistogram},
  };
  return kAll;
}

}  // namespace mk::apps
