// Sharded read-only database serving for the §5.4 scale-out workload.
//
// sec54_webserver shows that the web+SQL configuration bottlenecks at the
// single database core; scaling the serving stack past a couple of cores
// therefore needs the data tier scaled too. For a read-only browsing mix
// (TPC-W item detail SELECTs) the multikernel answer is replication, the same
// move the paper applies to OS state (§4.4: "replication is the default"):
// each serving shard gets a full replica of the database on a core of its own
// package, queried over the shard's private URPC channel — no shared state,
// no cross-shard coordination, reads scale with shards.
#ifndef MK_APPS_DBSHARD_H_
#define MK_APPS_DBSHARD_H_

#include <memory>
#include <string>
#include <vector>

#include "apps/db.h"
#include "hw/machine.h"
#include "net/packet_channel.h"
#include "sim/event.h"
#include "sim/task.h"
#include "urpc/channel.h"

namespace mk::apps {

using sim::Cycles;
using sim::Task;

// One shard's core pair: the web/serving core and the core its DB replica
// runs on (placed in the same package so the URPC hop stays intra-package).
struct ShardPlacement {
  int web_core = 0;
  int db_core = 0;
};

// A set of identical read-only Database replicas, one per shard, each served
// by its own core over a private URPC request channel + PacketChannel reply
// channel (the same transport pair sec54_webserver's single DbService uses).
class DbReplicaCluster {
 public:
  // Copies `source` once per shard; populate it before constructing.
  DbReplicaCluster(hw::Machine& machine, const Database& source,
                   std::vector<ShardPlacement> placements);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardPlacement& placement(int shard) const {
    return shards_[static_cast<std::size_t>(shard)]->placement;
  }

  // The replica server process for one shard: receives SQL over URPC,
  // executes it against the local replica, charges the parse + per-row scan
  // cost on the shard's DB core, replies with rendered rows. Spawn one per
  // shard; returns after Shutdown().
  Task<> Serve(int shard);

  // Web-side query: runs `sql` on the shard's replica, returns rendered
  // rows. One outstanding RPC per shard (the reply channel carries no
  // request ids), exactly like the single-DB bench. Under fault injection the
  // reply wait is bounded (RecoveryConfig::db_rpc_timeout); a timeout marks
  // the replica dead and the query retries against the redirect target, up to
  // db_max_attempts distinct replicas.
  Task<std::string> Query(int shard, std::string sql);

  // Poisons every shard's request channel; their Serve() loops drain and
  // return.
  Task<> Shutdown();

  std::uint64_t queries_served(int shard) const {
    return shards_[static_cast<std::size_t>(shard)]->served;
  }

  // --- Failover (driven by mk::recover view changes) ---

  // Membership-driven: marks every replica whose DB core is `dead_core` dead
  // and re-points shards that were using a dead replica at a live one
  // (deterministically: the nearest following live replica). Returns the
  // shards whose redirect changed. Queries in flight against the dead replica
  // recover via their reply timeout; new queries go straight to the target.
  std::vector<int> HandleCoreFailure(int dead_core);

  // Spawns a replacement replica for `shard` on `spare_db_core`: state
  // transfer of the database from the live replica `shard` currently
  // redirects to (charged like monitor hotplug catch-up: posted writes at the
  // source, read back at the spare), then the shard's redirect points home
  // again. The caller spawns Serve(shard) afterwards; the dead replica's
  // parked server task is retired with its Shard object.
  Task<bool> Respawn(int shard, int spare_db_core);

  int redirect(int shard) const { return redirect_[static_cast<std::size_t>(shard)]; }
  bool replica_dead(int shard) const { return dead_[static_cast<std::size_t>(shard)]; }
  // Bumped by Respawn; a query's timeout verdict only counts against the
  // incarnation it actually talked to (a reply wait that started against the
  // dead replica must not declare its replacement dead).
  std::uint64_t incarnation(int shard) const {
    return incarnation_[static_cast<std::size_t>(shard)];
  }
  std::uint64_t respawns() const { return respawns_; }
  std::uint64_t failover_timeouts() const { return failover_timeouts_; }
  bool replica_caught_up(int shard) const {
    return shards_[static_cast<std::size_t>(shard)]->caught_up;
  }
  // Test access: lets regression tests diverge a live replica from the
  // construction-time source before forcing a respawn.
  Database& replica_db_for_test(int shard) {
    return shards_[static_cast<std::size_t>(shard)]->db;
  }

 private:
  struct Shard {
    Shard(hw::Machine& m, ShardPlacement p, const Database& source)
        : placement(p), db(source), queries(m, p.web_core, p.db_core),
          replies(m, p.db_core, p.web_core, net::PacketChannel::Options{}),
          rpc_slot(m.exec(), 1), catch_up(m.exec()) {}
    ShardPlacement placement;
    Database db;  // full read-only replica
    urpc::Channel queries;
    net::PacketChannel replies;
    sim::Semaphore rpc_slot;
    // Respawn gate: a replacement replica is installed before its state
    // transfer completes, and must not serve until it has caught up — an
    // ungated query would read the stale construction-time snapshot and
    // return empty/old rows with no error. catch_up fires when the transfer
    // lands.
    bool caught_up = true;
    sim::Event catch_up;
    std::uint64_t served = 0;
  };

  // First live replica at or after `from` (wrapping); -1 if none.
  int FirstLiveReplica(int from) const;

  hw::Machine& machine_;
  Database source_;  // respawn source (the primary's copy)
  std::vector<std::unique_ptr<Shard>> shards_;
  // Where shard s's queries actually go (identity until failover).
  std::vector<int> redirect_;
  std::vector<bool> dead_;
  std::vector<std::uint64_t> incarnation_;
  // Dead replicas' Shard objects stay alive here: their parked Serve() tasks
  // and in-flight queries still reference them.
  std::vector<std::unique_ptr<Shard>> retired_;
  std::uint64_t respawns_ = 0;
  std::uint64_t failover_timeouts_ = 0;
};

}  // namespace mk::apps

#endif  // MK_APPS_DBSHARD_H_
