// Sharded read-only database serving for the §5.4 scale-out workload.
//
// sec54_webserver shows that the web+SQL configuration bottlenecks at the
// single database core; scaling the serving stack past a couple of cores
// therefore needs the data tier scaled too. For a read-only browsing mix
// (TPC-W item detail SELECTs) the multikernel answer is replication, the same
// move the paper applies to OS state (§4.4: "replication is the default"):
// each serving shard gets a full replica of the database on a core of its own
// package, queried over the shard's private URPC channel — no shared state,
// no cross-shard coordination, reads scale with shards.
#ifndef MK_APPS_DBSHARD_H_
#define MK_APPS_DBSHARD_H_

#include <memory>
#include <string>
#include <vector>

#include "apps/db.h"
#include "hw/machine.h"
#include "net/packet_channel.h"
#include "sim/event.h"
#include "sim/task.h"
#include "urpc/channel.h"

namespace mk::apps {

using sim::Cycles;
using sim::Task;

// One shard's core pair: the web/serving core and the core its DB replica
// runs on (placed in the same package so the URPC hop stays intra-package).
struct ShardPlacement {
  int web_core = 0;
  int db_core = 0;
};

// A set of identical read-only Database replicas, one per shard, each served
// by its own core over a private URPC request channel + PacketChannel reply
// channel (the same transport pair sec54_webserver's single DbService uses).
class DbReplicaCluster {
 public:
  // Copies `source` once per shard; populate it before constructing.
  DbReplicaCluster(hw::Machine& machine, const Database& source,
                   std::vector<ShardPlacement> placements);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardPlacement& placement(int shard) const {
    return shards_[static_cast<std::size_t>(shard)]->placement;
  }

  // The replica server process for one shard: receives SQL over URPC,
  // executes it against the local replica, charges the parse + per-row scan
  // cost on the shard's DB core, replies with rendered rows. Spawn one per
  // shard; returns after Shutdown().
  Task<> Serve(int shard);

  // Web-side query: runs `sql` on the shard's replica, returns rendered
  // rows. One outstanding RPC per shard (the reply channel carries no
  // request ids), exactly like the single-DB bench.
  Task<std::string> Query(int shard, std::string sql);

  // Poisons every shard's request channel; their Serve() loops drain and
  // return.
  Task<> Shutdown();

  std::uint64_t queries_served(int shard) const {
    return shards_[static_cast<std::size_t>(shard)]->served;
  }

 private:
  struct Shard {
    Shard(hw::Machine& m, ShardPlacement p, const Database& source)
        : placement(p), db(source), queries(m, p.web_core, p.db_core),
          replies(m, p.db_core, p.web_core, net::PacketChannel::Options{}),
          rpc_slot(m.exec(), 1) {}
    ShardPlacement placement;
    Database db;  // full read-only replica
    urpc::Channel queries;
    net::PacketChannel replies;
    sim::Semaphore rpc_slot;
    std::uint64_t served = 0;
  };

  hw::Machine& machine_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mk::apps

#endif  // MK_APPS_DBSHARD_H_
