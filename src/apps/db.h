// A small relational engine standing in for SQLite in the section 5.4 web
// workload: typed tables, INSERT, and a SELECT subset sufficient for the
// TPC-W-style browsing queries the paper issues
// (SELECT cols FROM table WHERE col op value [ORDER BY col [DESC]] [LIMIT n]).
//
// Query execution is real (full scan, filter, sort, limit); the simulated
// cost charged by the serving process is derived from the rows scanned and
// returned, so the "bottlenecked at the SQLite server core" behavior of the
// paper reproduces.
#ifndef MK_APPS_DB_H_
#define MK_APPS_DB_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace mk::apps {

using DbValue = std::variant<std::int64_t, std::string>;

std::string DbValueToString(const DbValue& v);

struct DbError {
  std::string message;
};

class Database {
 public:
  // Executes CREATE TABLE t (col INT|TEXT, ...),
  // INSERT INTO t VALUES (v, ...),
  // UPDATE t SET col = lit [, col = lit]* [WHERE col op lit], or
  // DELETE FROM t [WHERE col op lit]. Returns an error message on failure.
  std::optional<DbError> Exec(const std::string& sql);

  struct ResultSet {
    std::vector<std::string> columns;
    std::vector<std::vector<DbValue>> rows;
    std::uint64_t rows_scanned = 0;  // cost basis for the simulation
  };

  // Executes a SELECT; supports column lists or *, WHERE with = != < <= > >=
  // on one column, ORDER BY col [DESC], LIMIT n.
  std::variant<ResultSet, DbError> Query(const std::string& sql) const;

  std::size_t TableRows(const std::string& name) const;
  // Rows across all tables: the size basis for replica state transfer.
  std::size_t TotalRows() const;
  bool HasTable(const std::string& name) const;

  // --- Write-path ledger (mutation accounting the store's invariants audit) ---

  // Rows inserted over the database's lifetime. On a store replica this must
  // equal the count of acknowledged INSERTs shipped to it — any drift means a
  // write was lost or double-applied.
  std::uint64_t rows_inserted() const { return rows_inserted_; }
  // Rows touched by the most recent successful UPDATE/DELETE (0 for other
  // statements), and the rows it scanned (the simulated-cost basis).
  std::uint64_t rows_changed() const { return rows_changed_; }
  std::uint64_t last_exec_scanned() const { return last_exec_scanned_; }

 private:
  struct Column {
    std::string name;
    bool is_int = true;
  };
  struct Table {
    std::vector<Column> columns;
    std::vector<std::vector<DbValue>> rows;
    int ColumnIndex(const std::string& name) const;
  };
  struct WhereClause {
    int col = -1;  // -1: no WHERE, every row matches
    std::string op;
    DbValue val;
    bool Matches(const std::vector<DbValue>& row) const;
  };
  std::optional<DbError> ExecUpdate(class DbTokenizer& tok);
  std::optional<DbError> ExecDelete(class DbTokenizer& tok);
  static std::optional<DbError> ParseWhere(DbTokenizer& tok, const Table& table,
                                           WhereClause* out);
  std::map<std::string, Table> tables_;
  std::uint64_t rows_inserted_ = 0;
  std::uint64_t rows_changed_ = 0;
  std::uint64_t last_exec_scanned_ = 0;
};

}  // namespace mk::apps

#endif  // MK_APPS_DB_H_
