// A small relational engine standing in for SQLite in the section 5.4 web
// workload: typed tables, INSERT, and a SELECT subset sufficient for the
// TPC-W-style browsing queries the paper issues
// (SELECT cols FROM table WHERE col op value [ORDER BY col [DESC]] [LIMIT n]).
//
// Query execution is real (full scan, filter, sort, limit); the simulated
// cost charged by the serving process is derived from the rows scanned and
// returned, so the "bottlenecked at the SQLite server core" behavior of the
// paper reproduces.
#ifndef MK_APPS_DB_H_
#define MK_APPS_DB_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace mk::apps {

using DbValue = std::variant<std::int64_t, std::string>;

std::string DbValueToString(const DbValue& v);

struct DbError {
  std::string message;
};

class Database {
 public:
  // Executes CREATE TABLE t (col INT|TEXT, ...) or
  // INSERT INTO t VALUES (v, ...). Returns an error message on failure.
  std::optional<DbError> Exec(const std::string& sql);

  struct ResultSet {
    std::vector<std::string> columns;
    std::vector<std::vector<DbValue>> rows;
    std::uint64_t rows_scanned = 0;  // cost basis for the simulation
  };

  // Executes a SELECT; supports column lists or *, WHERE with = != < <= > >=
  // on one column, ORDER BY col [DESC], LIMIT n.
  std::variant<ResultSet, DbError> Query(const std::string& sql) const;

  std::size_t TableRows(const std::string& name) const;
  // Rows across all tables: the size basis for replica state transfer.
  std::size_t TotalRows() const;
  bool HasTable(const std::string& name) const;

 private:
  struct Column {
    std::string name;
    bool is_int = true;
  };
  struct Table {
    std::vector<Column> columns;
    std::vector<std::vector<DbValue>> rows;
    int ColumnIndex(const std::string& name) const;
  };
  std::map<std::string, Table> tables_;
};

}  // namespace mk::apps

#endif  // MK_APPS_DB_H_
