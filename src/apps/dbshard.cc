#include "apps/dbshard.h"

#include <cstring>
#include <variant>

namespace mk::apps {
namespace {

// Request-channel poison tag (same sentinel sec54_webserver's DbServer uses).
constexpr std::uint64_t kShutdownTag = 0xdead;

}  // namespace

DbReplicaCluster::DbReplicaCluster(hw::Machine& machine, const Database& source,
                                   std::vector<ShardPlacement> placements)
    : machine_(machine) {
  shards_.reserve(placements.size());
  for (const ShardPlacement& p : placements) {
    shards_.push_back(std::make_unique<Shard>(machine_, p, source));
  }
}

Task<> DbReplicaCluster::Serve(int shard) {
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  while (true) {
    // Reassemble the SQL text from URPC fragments (tag 2 = more, 1 = final).
    std::string sql;
    while (true) {
      urpc::Message msg = co_await s.queries.Recv();
      if (msg.tag == kShutdownTag) {
        co_return;
      }
      sql.append(reinterpret_cast<const char*>(msg.bytes.data()), msg.len);
      if (msg.tag == 1) {
        break;
      }
    }
    auto result = s.db.Query(sql);
    std::string rendered;
    std::uint64_t scanned = 0;
    if (std::holds_alternative<Database::ResultSet>(result)) {
      auto& rs = std::get<Database::ResultSet>(result);
      scanned = rs.rows_scanned;
      for (const auto& row : rs.rows) {
        for (const auto& v : row) {
          rendered += DbValueToString(v);
          rendered += '|';
        }
        rendered += '\n';
      }
    } else {
      rendered = "error: " + std::get<DbError>(result).message;
    }
    // Parse + per-row scan cost on this shard's own core (the cost model of
    // the single-DB bench, now paid in parallel across replicas).
    co_await machine_.Compute(s.placement.db_core, 5000 + scanned * 25);
    ++s.served;
    co_await s.replies.Send(
        net::Packet(rendered.begin(), rendered.end()));
  }
}

Task<std::string> DbReplicaCluster::Query(int shard, std::string sql) {
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  co_await s.rpc_slot.Acquire();
  for (std::size_t off = 0; off < sql.size(); off += urpc::Message::kPayloadBytes) {
    urpc::Message msg;
    msg.tag = off + urpc::Message::kPayloadBytes >= sql.size() ? 1 : 2;
    msg.len = static_cast<std::uint32_t>(
        std::min(urpc::Message::kPayloadBytes, sql.size() - off));
    std::memcpy(msg.bytes.data(), sql.data() + off, msg.len);
    co_await s.queries.Send(msg);
  }
  net::Packet reply = co_await s.replies.Recv();
  s.rpc_slot.Release();
  co_return std::string(reply.begin(), reply.end());
}

Task<> DbReplicaCluster::Shutdown() {
  for (auto& s : shards_) {
    urpc::Message poison;
    poison.tag = kShutdownTag;
    co_await s->queries.Send(poison);
  }
}

}  // namespace mk::apps
