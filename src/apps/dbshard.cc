#include "apps/dbshard.h"

#include <cstring>
#include <optional>
#include <utility>
#include <variant>

#include "fault/fault.h"
#include "recover/config.h"
#include "trace/trace.h"

namespace mk::apps {
namespace {

// Request-channel poison tag (same sentinel sec54_webserver's DbServer uses).
constexpr std::uint64_t kShutdownTag = 0xdead;

}  // namespace

DbReplicaCluster::DbReplicaCluster(hw::Machine& machine, const Database& source,
                                   std::vector<ShardPlacement> placements)
    : machine_(machine), source_(source) {
  shards_.reserve(placements.size());
  for (const ShardPlacement& p : placements) {
    shards_.push_back(std::make_unique<Shard>(machine_, p, source));
  }
  redirect_.resize(shards_.size());
  for (std::size_t i = 0; i < redirect_.size(); ++i) {
    redirect_[i] = static_cast<int>(i);
  }
  dead_.assign(shards_.size(), false);
  incarnation_.assign(shards_.size(), 0);
}

Task<> DbReplicaCluster::Serve(int shard) {
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  while (true) {
    // Reassemble the SQL text from URPC fragments (tag 2 = more, 1 = final).
    std::string sql;
    while (true) {
      urpc::Message msg = co_await s.queries.Recv();
      if (msg.tag == kShutdownTag) {
        co_return;
      }
      sql.append(reinterpret_cast<const char*>(msg.bytes.data()), msg.len);
      if (msg.tag == 1) {
        break;
      }
    }
    // Fail-stop: a replica on a halted core dies with its request in hand —
    // no reply, no accounting; the client's bounded reply wait recovers.
    // Injector-gated so plain runs never evaluate the predicate.
    if (fault::Injector* inj = fault::Injector::active();
        inj != nullptr && inj->CoreHalted(s.placement.db_core, machine_.exec().now())) {
      co_return;
    }
    auto result = s.db.Query(sql);
    std::string rendered;
    std::uint64_t scanned = 0;
    if (std::holds_alternative<Database::ResultSet>(result)) {
      auto& rs = std::get<Database::ResultSet>(result);
      scanned = rs.rows_scanned;
      for (const auto& row : rs.rows) {
        for (const auto& v : row) {
          rendered += DbValueToString(v);
          rendered += '|';
        }
        rendered += '\n';
      }
    } else {
      rendered = "error: " + std::get<DbError>(result).message;
    }
    // Parse + per-row scan cost on this shard's own core (the cost model of
    // the single-DB bench, now paid in parallel across replicas).
    co_await machine_.Compute(s.placement.db_core, 5000 + scanned * 25);
    ++s.served;
    co_await s.replies.Send(
        net::Packet(rendered.begin(), rendered.end()));
  }
}

Task<std::string> DbReplicaCluster::Query(int shard, std::string sql) {
  const int max_attempts = recover::Config().db_max_attempts;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const int target = redirect_[static_cast<std::size_t>(shard)];
    if (target < 0) {
      break;  // no live replica anywhere
    }
    const std::uint64_t inc = incarnation_[static_cast<std::size_t>(target)];
    Shard& s = *shards_[static_cast<std::size_t>(target)];
    if (!s.caught_up) {
      // Respawn in flight: the replacement's database is still the stale
      // construction-time snapshot. Wait for the state transfer instead of
      // serving empty/old rows, then re-resolve — redirect and incarnation
      // may both have moved while we slept. Only reachable under fault
      // injection (plain runs never respawn), so the extra wakeup cannot
      // perturb a fault-free schedule.
      co_await s.catch_up.Wait();
      continue;
    }
    co_await s.rpc_slot.Acquire();
    for (std::size_t off = 0; off < sql.size(); off += urpc::Message::kPayloadBytes) {
      urpc::Message msg;
      msg.tag = off + urpc::Message::kPayloadBytes >= sql.size() ? 1 : 2;
      msg.len = static_cast<std::uint32_t>(
          std::min(urpc::Message::kPayloadBytes, sql.size() - off));
      std::memcpy(msg.bytes.data(), sql.data() + off, msg.len);
      co_await s.queries.Send(msg);
    }
    if (fault::Injector::active() == nullptr) {
      // Plain runs: unbounded wait, the exact pre-failover reply path.
      net::Packet reply = co_await s.replies.Recv();
      s.rpc_slot.Release();
      co_return std::string(reply.begin(), reply.end());
    }
    std::optional<net::Packet> reply =
        co_await s.replies.RecvTimeout(recover::Config().db_rpc_timeout);
    s.rpc_slot.Release();
    if (reply.has_value()) {
      co_return std::string(reply->begin(), reply->end());
    }
    // Reply timeout: the replica is gone (or unreachably slow — same thing to
    // a fail-stop client). Mark it dead and re-point this shard at the
    // nearest following live replica; a stale late reply is harmless because
    // a dead replica's channels are never used again (Respawn installs fresh
    // ones). A wait that started against a since-respawned incarnation says
    // nothing about the replacement — just retry at the current redirect.
    ++failover_timeouts_;
    if (incarnation_[static_cast<std::size_t>(target)] != inc) {
      continue;
    }
    dead_[static_cast<std::size_t>(target)] = true;
    const int next = FirstLiveReplica(shard);
    if (next < 0) {
      break;
    }
    redirect_[static_cast<std::size_t>(shard)] = next;
    trace::Emit<trace::Category::kRecover>(
        trace::EventId::kRecoverDbRepoint, machine_.exec().now(),
        shards_[static_cast<std::size_t>(shard)]->placement.web_core,
        static_cast<std::uint64_t>(target), static_cast<std::uint64_t>(next));
  }
  co_return "error: replica failover exhausted";
}

Task<> DbReplicaCluster::Shutdown() {
  for (auto& s : shards_) {
    urpc::Message poison;
    poison.tag = kShutdownTag;
    co_await s->queries.Send(poison);
  }
}

int DbReplicaCluster::FirstLiveReplica(int from) const {
  const int n = num_shards();
  for (int i = 0; i < n; ++i) {
    const int cand = (from + i) % n;
    if (!dead_[static_cast<std::size_t>(cand)]) {
      return cand;
    }
  }
  return -1;
}

std::vector<int> DbReplicaCluster::HandleCoreFailure(int dead_core) {
  for (std::size_t r = 0; r < shards_.size(); ++r) {
    if (shards_[r]->placement.db_core == dead_core) {
      dead_[r] = true;
    }
  }
  std::vector<int> changed;
  for (int s = 0; s < num_shards(); ++s) {
    const int cur = redirect_[static_cast<std::size_t>(s)];
    if (cur >= 0 && !dead_[static_cast<std::size_t>(cur)]) {
      continue;
    }
    const int next = FirstLiveReplica(s);
    if (next == cur) {
      continue;
    }
    redirect_[static_cast<std::size_t>(s)] = next;
    if (next >= 0) {
      trace::Emit<trace::Category::kRecover>(
          trace::EventId::kRecoverDbRepoint, machine_.exec().now(),
          shards_[static_cast<std::size_t>(s)]->placement.web_core,
          static_cast<std::uint64_t>(cur), static_cast<std::uint64_t>(next));
    }
    changed.push_back(s);
  }
  return changed;
}

Task<bool> DbReplicaCluster::Respawn(int shard, int spare_db_core) {
  const auto idx = static_cast<std::size_t>(shard);
  if (!dead_[idx]) {
    co_return false;  // nothing to replace
  }
  int donor = redirect_[idx];
  if (donor < 0 || dead_[static_cast<std::size_t>(donor)]) {
    donor = FirstLiveReplica(shard);
  }
  if (donor < 0) {
    co_return false;  // no live replica left to stream from
  }
  // The donor's Shard object is address-stable even if the donor is retired
  // mid-transfer (unique_ptr moves keep the pointee), so pin it up front.
  Shard& donor_s = *shards_[static_cast<std::size_t>(donor)];
  // Install the replacement immediately, but gated: it opens with the stale
  // construction-time snapshot and caught_up=false, so a query re-routed here
  // mid-transfer (e.g. the donor dies too) waits on catch_up instead of
  // reading rows the transfer hasn't delivered. Redirect keeps pointing at
  // the donor until the transfer lands — availability is unchanged.
  retired_.push_back(std::move(shards_[idx]));
  ShardPlacement p = retired_.back()->placement;
  p.db_core = spare_db_core;
  shards_[idx] = std::make_unique<Shard>(machine_, p, source_);
  Shard& fresh = *shards_[idx];
  fresh.caught_up = false;
  dead_[idx] = false;
  ++incarnation_[idx];
  // State transfer, charged like monitor hotplug catch-up (OnlineCore):
  // posted writes at the donor's DB core, read back at the spare. 64 bytes
  // per row stands in for the row image. Sized from the donor's *live*
  // replica — the construction-time source_ says nothing about rows the
  // donor gained since boot.
  const std::uint64_t bytes = (donor_s.db.TotalRows() + 1) * 64;
  sim::Addr buf = machine_.mem().AllocLines(
      machine_.topo().PackageOf(spare_db_core), sim::LinesCovering(0, bytes));
  co_await machine_.mem().WritePosted(donor_s.placement.db_core, buf, bytes);
  co_await machine_.mem().Read(spare_db_core, buf, bytes);
  // Only now does the replacement hold real data: copy the donor's live
  // database (the old code copied source_, silently resurrecting the boot
  // image), open the gate, and point the shard home again.
  fresh.db = donor_s.db;
  fresh.caught_up = true;
  fresh.catch_up.Signal();
  redirect_[idx] = shard;  // point home again
  ++respawns_;
  trace::Emit<trace::Category::kRecover>(
      trace::EventId::kRecoverDbRespawn, machine_.exec().now(), p.web_core,
      static_cast<std::uint64_t>(shard), static_cast<std::uint64_t>(spare_db_core));
  co_return true;
}

}  // namespace mk::apps
