#include "apps/store.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <utility>
#include <variant>

#include "fault/fault.h"
#include "recover/config.h"
#include "trace/trace.h"

namespace mk::apps {
namespace {

// Request-channel tags (web -> replica). Same fragment scheme as dbshard:
// 2 = more SQL bytes, 1 = final fragment; a write is prefixed by a header
// message carrying the client write id.
constexpr std::uint64_t kMoreTag = 2;
constexpr std::uint64_t kFinalTag = 1;
constexpr std::uint64_t kReqHdrTag = 4;
constexpr std::uint64_t kAckTag = 5;
constexpr std::uint64_t kShutdownTag = 0xdead;

// Every request opens with this header so the reply can be paired with the
// attempt that is actually waiting: a reply is "<nonce>|<body>", and the web
// side drains replies whose nonce belongs to a superseded (timed-out)
// attempt. Without the nonce, a commit that stalled past the RPC timeout
// would leave its late reply in the channel to be mis-paired with the NEXT
// request's wait.
struct WireReqHdr {
  std::uint64_t nonce = 0;
  std::uint64_t wid = 0;
  std::uint64_t is_write = 0;
};

bool CoreHalted(hw::Machine& machine, int core) {
  fault::Injector* inj = fault::Injector::active();
  return inj != nullptr && inj->CoreHalted(core, machine.exec().now());
}

net::Packet EncodeShip(const fs::WalRecord& rec) {
  std::vector<std::uint8_t> frame;
  fs::EncodeWalRecord(rec, &frame);
  return net::Packet(frame.begin(), frame.end());
}

// Store record payload: "<wid> <sql>". The wid travels inside the log record
// so a promoted or respawned replica rebuilds its dedup set from replay.
bool ParsePayload(const std::string& payload, std::uint64_t* wid, std::string* sql) {
  std::size_t sp = payload.find(' ');
  if (sp == std::string::npos) {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sp; ++i) {
    char ch = payload[i];
    if (ch < '0' || ch > '9') {
      return false;
    }
    v = v * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  *wid = v;
  *sql = payload.substr(sp + 1);
  return true;
}

std::string RenderRows(const Database::ResultSet& rs) {
  std::string rendered;
  for (const auto& row : rs.rows) {
    for (const auto& v : row) {
      rendered += DbValueToString(v);
      rendered += '|';
    }
    rendered += '\n';
  }
  return rendered;
}

}  // namespace

ReplicatedStore::ReplicatedStore(hw::Machine& machine, fs::ReplicatedFs& fs,
                                 const Database& source,
                                 std::vector<StorePlacement> placements)
    : machine_(machine), fs_(fs), source_(source) {
  groups_.reserve(placements.size());
  for (std::size_t i = 0; i < placements.size(); ++i) {
    StorePlacement& p = placements[i];
    // The WAL's fs sequencer is pinned to the shard's web core: replica-kill
    // plans never halt web cores, so the log's ordering authority survives
    // every failover this store is designed for (DESIGN.md §13 discusses the
    // sequencer-death limitation).
    std::string path = fs::Wal::PickPath(
        fs, "/wal/shard" + std::to_string(i), p.web_core);
    auto g = std::make_unique<Group>(machine_, p, fs_, std::move(path));
    for (int core : g->placement.replica_cores) {
      g->replicas.push_back(
          std::make_unique<Replica>(machine_, g->placement.web_core, core, source_));
    }
    groups_.push_back(std::move(g));
  }
}

Task<> ReplicatedStore::Start() {
  for (auto& gp : groups_) {
    Group& g = *gp;
    // One replicated-fs collective per shard; initiated at the leader core
    // (any core works — the op is sequenced at the WAL's web-core sequencer).
    (void)co_await g.wal.Open(g.replicas[0]->core);
    for (auto& r : g.replicas) {
      machine_.exec().Spawn(ServeReplica(g, r.get()));
    }
    // Boot links: leader (slot 0) ships to every other slot.
    for (std::size_t slot = 1; slot < g.replicas.size(); ++slot) {
      MakeLink(g, g.replicas[slot].get());
    }
  }
}

void ReplicatedStore::MakeLink(Group& g, Replica* follower) {
  g.links.push_back(std::make_unique<Link>(
      machine_, g.replicas[static_cast<std::size_t>(g.leader_slot)]->core, follower));
  Link* link = g.links.back().get();
  machine_.exec().Spawn(ApplyLoop(g, link));
  machine_.exec().Spawn(AckPump(g, link));
}

// --- Web side ---

Task<std::string> ReplicatedStore::RoundTrip(Group& g, bool is_write, std::uint64_t wid,
                                             const std::string& sql) {
  const int max_attempts = recover::Config().store_max_attempts;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Replica& r = *g.replicas[static_cast<std::size_t>(g.leader_slot)];
    co_await g.rpc_slot.Acquire();
    WireReqHdr hdr;
    hdr.nonce = ++g.req_nonce;
    hdr.wid = wid;
    hdr.is_write = is_write ? 1 : 0;
    co_await r.requests.Send(urpc::Pack(kReqHdrTag, hdr));
    for (std::size_t off = 0; off < sql.size(); off += urpc::Message::kPayloadBytes) {
      urpc::Message msg;
      msg.tag = off + urpc::Message::kPayloadBytes >= sql.size() ? kFinalTag : kMoreTag;
      msg.len = static_cast<std::uint32_t>(
          std::min(urpc::Message::kPayloadBytes, sql.size() - off));
      std::memcpy(msg.bytes.data(), sql.data() + off, msg.len);
      co_await r.requests.Send(msg);
    }
    const std::string want = std::to_string(hdr.nonce) + "|";
    std::string text;
    bool got_reply = false;
    // Drain until this attempt's reply arrives; replies to superseded
    // attempts (an earlier timeout on this same channel) are discarded by
    // nonce. Plain runs take the unbounded no-timer wait and can never see a
    // stale nonce (no attempt ever times out without the injector).
    while (true) {
      if (fault::Injector::active() == nullptr) {
        net::Packet reply = co_await r.replies.Recv();
        text.assign(reply.begin(), reply.end());
      } else {
        std::optional<net::Packet> reply =
            co_await r.replies.RecvTimeout(recover::Config().store_rpc_timeout);
        if (!reply.has_value()) {
          break;  // timeout: give up on this attempt
        }
        text.assign(reply->begin(), reply->end());
      }
      if (text.rfind(want, 0) == 0) {
        text = text.substr(want.size());
        got_reply = true;
        break;
      }
      // Stale nonce: a superseded attempt's late reply. Drop and keep
      // waiting — ours is still owed.
    }
    g.rpc_slot.Release();
    if (got_reply) {
      if (text == "error: not-leader") {
        continue;  // promotion raced the send; retry resolves the new leader
      }
      co_return text;
    }
    // Reply timeout: the leader is gone, or its commit stalled past the
    // timeout (a follower died and the view change hasn't landed yet).
    // Promotion is membership-driven; the retry re-resolves leader_slot —
    // with the same wid, so a write that did commit before the timeout
    // answers "dup" instead of applying twice.
    ++rpc_timeouts_;
  }
  co_return "error: store failover exhausted";
}

Task<std::string> ReplicatedStore::Query(int shard, std::string sql) {
  Group& g = *groups_[static_cast<std::size_t>(shard)];
  co_return co_await RoundTrip(g, /*is_write=*/false, 0, sql);
}

Task<std::string> ReplicatedStore::Execute(int shard, std::uint64_t wid, std::string sql) {
  Group& g = *groups_[static_cast<std::size_t>(shard)];
  co_return co_await RoundTrip(g, /*is_write=*/true, wid, sql);
}

// --- Replica serve loop ---

Task<> ReplicatedStore::ServeReplica(Group& g, Replica* r) {
  while (true) {
    WireReqHdr hdr;
    std::string sql;
    bool have_hdr = false;
    while (true) {
      urpc::Message msg = co_await r->requests.Recv();
      if (msg.tag == kShutdownTag) {
        co_return;
      }
      if (msg.tag == kReqHdrTag) {
        hdr = urpc::Unpack<WireReqHdr>(msg);
        have_hdr = true;
        continue;
      }
      sql.append(reinterpret_cast<const char*>(msg.bytes.data()), msg.len);
      if (msg.tag == kFinalTag) {
        break;
      }
    }
    if (!have_hdr) {
      continue;  // torn request (protocol bug); never reply to a half-frame
    }
    // Fail-stop: a replica on a halted core dies with the request in hand.
    if (CoreHalted(machine_, r->core)) {
      co_return;
    }
    const std::string prefix = std::to_string(hdr.nonce) + "|";
    // Only the current leader serves; a request that raced a promotion is
    // bounced so the web tier re-resolves (reads must not see a stale or
    // catching-up replica either — leader-locality is the consistency story).
    if (g.replicas[static_cast<std::size_t>(g.leader_slot)].get() != r || !r->caught_up) {
      co_await machine_.Compute(r->core, 1000);
      std::string bounce = prefix + "error: not-leader";
      co_await r->replies.Send(net::Packet(bounce.begin(), bounce.end()));
      continue;
    }
    std::string reply;
    if (hdr.is_write != 0) {
      reply = co_await HandleWrite(g, r, hdr.wid, sql);
      if (reply.empty()) {
        co_return;  // halted mid-write: never ack
      }
    } else {
      auto result = r->db.Query(sql);
      std::uint64_t scanned = 0;
      if (std::holds_alternative<Database::ResultSet>(result)) {
        auto& rs = std::get<Database::ResultSet>(result);
        scanned = rs.rows_scanned;
        reply = RenderRows(rs);
      } else {
        reply = "error: " + std::get<DbError>(result).message;
      }
      co_await machine_.Compute(r->core, 5000 + scanned * 25);
      ++g.reads_served;
    }
    if (CoreHalted(machine_, r->core)) {
      co_return;
    }
    reply = prefix + reply;
    co_await r->replies.Send(net::Packet(reply.begin(), reply.end()));
  }
}

Task<std::string> ReplicatedStore::HandleWrite(Group& g, Replica* r, std::uint64_t wid,
                                               const std::string& sql) {
  // Exactly-once: a retry of a write this group already applied (committed
  // but the ack was lost with the old leader) is answered without touching
  // the log or the tables — "dup" if it applied, the recorded engine error
  // if it was rejected, so a lost error reply never turns into a false "dup".
  if (auto dup = r->applied_wids.find(wid); dup != r->applied_wids.end()) {
    co_await machine_.Compute(r->core, 1000);
    ++g.writes_dup;
    co_return dup->second.empty() ? "dup" : "error: db: " + dup->second;
  }
  const std::uint64_t term = g.term;
  const std::uint64_t lsn = g.last_lsn + 1;
  fs::WalRecord rec;
  rec.lsn = lsn;
  rec.term = term;
  rec.payload = std::to_string(wid) + " " + sql;
  // 1. Durability: the append is a replicated-fs collective; when it returns
  //    kOk the record is on every online core's fs replica.
  fs::FsErr werr = co_await g.wal.Append(r->core, rec);
  if (CoreHalted(machine_, r->core)) {
    co_return "";  // fail-stop mid-append: no ack, client retries elsewhere
  }
  if (werr != fs::FsErr::kOk) {
    co_return "error: wal-" + std::string(fs::FsErrName(werr));
  }
  // Fence: if a view change superseded this leadership while the append was
  // in flight, the deposed leader must not advance the group or ack.
  if (g.term != term || g.replicas[static_cast<std::size_t>(g.leader_slot)].get() != r) {
    ++g.writes_fenced;
    co_return "error: fenced";
  }
  g.last_lsn = lsn;
  // 2. Local apply (the leader is always caught up by construction).
  auto err = r->db.Exec(sql);
  r->applied_wids.emplace(wid, err.has_value() ? err->message : std::string());
  r->applied_lsn = lsn;
  if (r->term_seen < term) {
    r->term_seen = term;
  }
  co_await machine_.Compute(r->core, 5000 + r->db.last_exec_scanned() * 25);
  // 3. Ship to every live follower (even catching-up ones: applying shipped
  //    records in lsn order is how they converge). Snapshot the Link set
  //    first: Send can suspend, and a view change during the suspension may
  //    MakeLink (g.links.push_back reallocates, invalidating live iterators).
  //    Link objects themselves are never destroyed, only the vector moves —
  //    and links the new leader adds mid-ship are not ours to ship on.
  std::vector<Link*> ship_to;
  ship_to.reserve(g.links.size());
  for (const auto& l : g.links) {
    ship_to.push_back(l.get());
  }
  for (Link* l : ship_to) {
    if (l->active && l->follower->alive) {
      co_await l->ship.Send(EncodeShip(rec));
      ++g.records_shipped;
    }
  }
  // 4. Commit rule: every caught-up live follower must have acked this lsn.
  //    Membership changes and ack arrivals both signal commit_ev; the bounded
  //    wait (injector runs only) re-checks liveness each expiry so a follower
  //    that dies mid-commit cannot wedge the leader past its view change.
  while (true) {
    if (g.term != term || g.replicas[static_cast<std::size_t>(g.leader_slot)].get() != r) {
      ++g.writes_fenced;
      co_return "error: fenced";
    }
    bool all_acked = true;
    for (auto& l : g.links) {
      if (!l->active) {
        continue;
      }
      Replica* f = l->follower;
      if (f->alive && f->caught_up && f->acked_lsn < lsn) {
        all_acked = false;
        break;
      }
    }
    if (all_acked) {
      break;
    }
    if (fault::Injector::active() == nullptr) {
      co_await g.commit_ev.Wait();
    } else {
      (void)co_await g.commit_ev.WaitTimeout(recover::Config().store_commit_timeout);
    }
  }
  if (CoreHalted(machine_, r->core)) {
    co_return "";  // fail-stop after commit, before ack: the retry sees "dup"
  }
  if (err.has_value()) {
    // The engine rejected the statement — deterministically, on every
    // replica, so the group stays consistent; the log carries the record but
    // the client learns the real error.
    ++g.writes_rejected;
    co_return "error: db: " + err->message;
  }
  ++g.writes_committed;
  co_return "ok " + std::to_string(lsn);
}

// --- Replication pumps ---

std::uint64_t ReplicatedStore::ApplyRecord(Replica* r, const fs::WalRecord& rec) {
  if (rec.lsn != r->applied_lsn + 1) {
    return 0;  // not next in order (dup or gap); caller decides what's next
  }
  std::uint64_t wid = 0;
  std::string sql;
  std::uint64_t scanned = 0;
  if (ParsePayload(rec.payload, &wid, &sql) && r->applied_wids.count(wid) == 0) {
    // Engine-level rejects are deterministic no-ops; the message is recorded
    // so this replica, once leader, answers a retry with the real outcome.
    auto err = r->db.Exec(sql);
    scanned = r->db.last_exec_scanned();
    r->applied_wids.emplace(wid, err.has_value() ? err->message : std::string());
  }
  r->applied_lsn = rec.lsn;
  if (r->term_seen < rec.term) {
    r->term_seen = rec.term;
  }
  return scanned;
}

Task<> ReplicatedStore::ApplyLoop(Group& g, Link* link) {
  Replica* f = link->follower;
  while (true) {
    net::Packet pkt = co_await link->ship.Recv();
    std::vector<fs::WalRecord> recs;
    std::vector<std::uint8_t> bytes(pkt.begin(), pkt.end());
    if (!fs::DecodeWalLog(bytes, &recs) || recs.empty()) {
      co_return;
    }
    const fs::WalRecord& rec = recs.front();
    if (rec.lsn == 0) {
      // Shutdown poison: forward it down the ack channel so the leader-side
      // pump exits too, then die.
      co_await link->acks.Send(urpc::Pack(kShutdownTag, std::uint64_t{0}));
      co_return;
    }
    if (CoreHalted(machine_, f->core)) {
      co_return;
    }
    if (rec.term < f->term_seen) {
      // A deposed leader's in-flight ship arriving after the view change that
      // promoted someone else: dropped, never acked. This is the fence that
      // keeps a stale leader from assembling a commit after its term ended.
      ++g.stale_ships;
      continue;
    }
    if (rec.lsn > f->applied_lsn + 1) {
      // Gap: only reachable when faults dropped/fenced earlier ships. Every
      // committed record is in the WAL, so fill from the log (replica-local
      // read on this core), then fall through to the shipped record.
      std::vector<fs::WalRecord> log = co_await g.wal.ReadAll(f->core);
      for (const fs::WalRecord& lr : log) {
        if (lr.lsn >= rec.lsn) {
          break;
        }
        std::uint64_t scanned = ApplyRecord(f, lr);
        co_await machine_.Compute(f->core, 2500 + scanned * 25);
      }
    }
    std::uint64_t scanned = ApplyRecord(f, rec);
    co_await machine_.Compute(f->core, 2500 + scanned * 25);
    // Ack the current applied lsn — also for dups and still-gapped receipts,
    // so the leader's view converges no matter which path delivered the data.
    co_await link->acks.Send(urpc::Pack(kAckTag, f->applied_lsn));
  }
}

Task<> ReplicatedStore::AckPump(Group& g, Link* link) {
  while (true) {
    urpc::Message msg = co_await link->acks.Recv();
    if (msg.tag == kShutdownTag) {
      co_return;
    }
    std::uint64_t acked = urpc::Unpack<std::uint64_t>(msg);
    if (acked > link->follower->acked_lsn) {
      link->follower->acked_lsn = acked;
    }
    g.commit_ev.Signal();
  }
}

Task<> ReplicatedStore::CatchUp(Group& g, Replica* r) {
  while (true) {
    std::vector<fs::WalRecord> log = co_await g.wal.ReadAll(r->core);
    for (const fs::WalRecord& rec : log) {
      std::uint64_t scanned = ApplyRecord(r, rec);
      co_await machine_.Compute(r->core, 2500 + scanned * 25);
    }
    if (r->applied_lsn >= g.last_lsn || !r->alive) {
      break;
    }
    // New records may land while we replay; poll until the gap closes. Only
    // reachable after a kill, so the injector (and its timers) are active.
    (void)co_await g.commit_ev.WaitTimeout(recover::Config().store_catchup_poll);
  }
  if (r->alive) {
    r->caught_up = true;
    ++catchups_;
    g.commit_ev.Signal();  // the leader's commit rule now includes us
  }
}

// --- Membership-driven failover ---

Task<> ReplicatedStore::HandleViewChange(const recover::View& view, int dead_core) {
  for (auto& gp : groups_) {
    Group& g = *gp;
    bool leader_died = false;
    bool any_died = false;
    int dead_slot = -1;
    for (std::size_t slot = 0; slot < g.replicas.size(); ++slot) {
      Replica* r = g.replicas[slot].get();
      if (r->alive && r->core == dead_core) {
        r->alive = false;
        any_died = true;
        dead_slot = static_cast<int>(slot);
        if (static_cast<int>(slot) == g.leader_slot) {
          leader_died = true;
        }
        for (auto& l : g.links) {
          if (l->follower == r) {
            l->active = false;
          }
        }
      }
    }
    if (!any_died) {
      continue;
    }
    if (leader_died) {
      // Promote the most-caught-up live replica: max applied lsn, ties to the
      // lowest slot. By the commit rule no committed write can be missing
      // from it — commit required every caught-up follower's ack.
      int best = -1;
      for (std::size_t slot = 0; slot < g.replicas.size(); ++slot) {
        Replica* r = g.replicas[slot].get();
        if (!r->alive || !r->caught_up) {
          continue;
        }
        if (best < 0 ||
            r->applied_lsn > g.replicas[static_cast<std::size_t>(best)]->applied_lsn) {
          best = static_cast<int>(slot);
        }
      }
      // The dead leader's ships are void either way.
      for (auto& l : g.links) {
        l->active = false;
      }
      if (best < 0) {
        g.commit_ev.Signal();
        continue;  // no live caught-up replica: the shard is down
      }
      // The term *is* the membership epoch: epochs are already agreed on by
      // the survivors and strictly increase, which is exactly what a fencing
      // token needs — no second consensus round required.
      g.term = view.epoch;
      g.leader_slot = best;
      ++g.incarnation;
      ++promotions_;
      Replica* leader = g.replicas[static_cast<std::size_t>(best)].get();
      // Survivors fence the deposed leader's in-flight ships from this
      // instant: anything below the new term is dropped on arrival.
      for (auto& rp : g.replicas) {
        if (rp->alive && rp->term_seen < g.term) {
          rp->term_seen = g.term;
        }
      }
      trace::Emit<trace::Category::kRecover>(
          trace::EventId::kRecoverDbRepoint, machine_.exec().now(),
          g.placement.web_core, static_cast<std::uint64_t>(dead_core),
          static_cast<std::uint64_t>(leader->core));
      // Discard the uncommitted suffix: records beyond the new leader's
      // applied lsn cannot have committed (its own ack was required), and the
      // clients that wrote them will retry under the new term with their
      // original write ids.
      std::int64_t dropped =
          co_await g.wal.TruncateAfter(leader->core, leader->applied_lsn);
      if (dropped > 0) {
        g.truncated += static_cast<std::uint64_t>(dropped);
      }
      g.last_lsn = leader->applied_lsn;
      // Fresh shipping links from the new leader to every live follower.
      for (std::size_t slot = 0; slot < g.replicas.size(); ++slot) {
        Replica* r = g.replicas[slot].get();
        if (static_cast<int>(slot) != best && r->alive) {
          MakeLink(g, r);
        }
      }
    }
    // Respawn the dead replica on the shard's spare core (once): boot image
    // plus WAL replay, gated caught_up until the replay closes the gap.
    if (dead_slot >= 0 && g.placement.spare_core >= 0 && !g.spare_used &&
        g.replicas[static_cast<std::size_t>(g.leader_slot)]->alive) {
      g.spare_used = true;
      g.retired.push_back(std::move(g.replicas[static_cast<std::size_t>(dead_slot)]));
      auto fresh = std::make_unique<Replica>(machine_, g.placement.web_core,
                                             g.placement.spare_core, source_);
      fresh->caught_up = false;
      Replica* r = fresh.get();
      g.replicas[static_cast<std::size_t>(dead_slot)] = std::move(fresh);
      ++respawns_;
      trace::Emit<trace::Category::kRecover>(
          trace::EventId::kRecoverDbRespawn, machine_.exec().now(),
          g.placement.web_core, static_cast<std::uint64_t>(dead_slot),
          static_cast<std::uint64_t>(g.placement.spare_core));
      machine_.exec().Spawn(ServeReplica(g, r));
      MakeLink(g, r);
      machine_.exec().Spawn(CatchUp(g, r));
    }
    // Wake any commit wait: its ack set just changed.
    g.commit_ev.Signal();
  }
  co_return;
}

Task<> ReplicatedStore::Shutdown() {
  for (auto& gp : groups_) {
    Group& g = *gp;
    for (auto& r : g.replicas) {
      urpc::Message poison;
      poison.tag = kShutdownTag;
      co_await r->requests.Send(poison);
    }
    // Index loop, not a range-for: Send suspends, and a view change during
    // the suspension may push_back onto g.links (iterator invalidation).
    for (std::size_t i = 0; i < g.links.size(); ++i) {
      Link* l = g.links[i].get();
      if (l->active) {
        fs::WalRecord poison;  // lsn 0 = ship poison
        co_await l->ship.Send(EncodeShip(poison));
      }
    }
  }
}

}  // namespace mk::apps
