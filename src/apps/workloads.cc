#include "apps/workloads.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <deque>

#include "sim/random.h"

namespace mk::apps {
namespace {

using proc::OmpRuntime;
using sim::Addr;

// Calibration: amortized cycles per floating-point op (superscalar core) and
// per light integer op.
constexpr Cycles kCyclesPerFlop = 1;
constexpr Cycles kCyclesPerIntOp = 1;
// Sparse mat-vec is memory bound: effective cycles per flop are higher.
constexpr Cycles kSpmvCyclesPerFlop = 3;

// A shared array backed by simulated cache lines.
struct Region {
  Region(hw::Machine& m, int node, std::uint64_t bytes)
      : base(m.mem().AllocLines(node, sim::LinesCovering(0, bytes))), bytes(bytes) {}
  Addr base;
  std::uint64_t bytes;

  Addr AddrOf(std::uint64_t byte_off) const { return base + byte_off; }
};

// Charges a read of the element range [first, last) x elem_bytes.
Task<> ChargeRead(hw::Machine& m, int core, const Region& r, std::uint64_t first,
                  std::uint64_t last, std::uint64_t elem_bytes) {
  if (first >= last) {
    co_return;
  }
  co_await m.mem().Read(core, r.AddrOf(first * elem_bytes), (last - first) * elem_bytes);
}

Task<> ChargeWrite(hw::Machine& m, int core, const Region& r, std::uint64_t first,
                   std::uint64_t last, std::uint64_t elem_bytes) {
  if (first >= last) {
    co_return;
  }
  co_await m.mem().Write(core, r.AddrOf(first * elem_bytes), (last - first) * elem_bytes);
}

// ---------------------------------------------------------------------------
// CG: conjugate gradient.
// ---------------------------------------------------------------------------

struct SparseMatrix {
  std::int64_t n = 0;
  std::vector<std::vector<std::pair<std::int32_t, double>>> rows;

  static SparseMatrix Random(std::int64_t n, int nnz_per_row, std::uint64_t seed) {
    SparseMatrix a;
    a.n = n;
    a.rows.resize(static_cast<std::size_t>(n));
    sim::Rng rng(seed);
    for (std::int64_t i = 0; i < n; ++i) {
      auto& row = a.rows[static_cast<std::size_t>(i)];
      double off_diag_sum = 0;
      for (int k = 0; k < nnz_per_row; ++k) {
        auto j = static_cast<std::int32_t>(rng.Below(static_cast<std::uint64_t>(n)));
        double v = rng.NextDouble() - 0.5;
        row.emplace_back(j, v);
        off_diag_sum += std::abs(v);
      }
      // Diagonal dominance => positive definite enough for CG to converge.
      row.emplace_back(static_cast<std::int32_t>(i), off_diag_sum + 1.0);
    }
    return a;
  }
};

}  // namespace

Task<WorkloadResult> RunCg(OmpRuntime& omp, WorkloadParams params) {
  hw::Machine& m = omp.machine();
  const std::int64_t n = params.size;
  SparseMatrix a = SparseMatrix::Random(n, 8, params.seed);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  std::vector<double> r = b;                 // r = b - A*0
  std::vector<double> p = r;
  std::vector<double> q(static_cast<std::size_t>(n), 0.0);
  double rho = 0;
  for (double v : r) {
    rho += v * v;
  }

  Region p_region(m, 0, static_cast<std::uint64_t>(n) * 8);
  Region q_region(m, 0, static_cast<std::uint64_t>(n) * 8);
  double alpha_den = 0;
  double rho_new = 0;
  const Cycles t0 = m.exec().now();

  for (int iter = 0; iter < params.iterations; ++iter) {
    alpha_den = 0;
    // Phase 1: q = A p and partial dot(p, q), reduction + barrier.
    co_await omp.Parallel([&](int tid, int core) -> Task<> {
      auto range = omp.ChunkOf(n, tid);
      // The mat-vec reads the whole of p: the chunks other threads rewrote
      // last iteration are coherence misses.
      co_await ChargeRead(m, core, p_region, 0, static_cast<std::uint64_t>(n), 8);
      std::uint64_t flops = 0;
      double partial = 0;
      for (std::int64_t i = range.begin; i < range.end; ++i) {
        double sum = 0;
        for (auto [j, v] : a.rows[static_cast<std::size_t>(i)]) {
          sum += v * p[static_cast<std::size_t>(j)];
        }
        q[static_cast<std::size_t>(i)] = sum;
        flops += 2 * a.rows[static_cast<std::size_t>(i)].size();
        partial += p[static_cast<std::size_t>(i)] * sum;
        flops += 2;
      }
      alpha_den += partial;
      co_await m.Compute(core, flops * kSpmvCyclesPerFlop);
      co_await ChargeWrite(m, core, q_region, static_cast<std::uint64_t>(range.begin),
                           static_cast<std::uint64_t>(range.end), 8);
      co_await omp.ReduceContribution(core);
    });

    double alpha = rho / alpha_den;
    rho_new = 0;
    // Phase 2: x += alpha p; r -= alpha q; partial dot(r, r); reduce+barrier.
    co_await omp.Parallel([&](int tid, int core) -> Task<> {
      auto range = omp.ChunkOf(n, tid);
      std::uint64_t flops = 0;
      double partial = 0;
      for (std::int64_t i = range.begin; i < range.end; ++i) {
        auto idx = static_cast<std::size_t>(i);
        x[idx] += alpha * p[idx];
        r[idx] -= alpha * q[idx];
        partial += r[idx] * r[idx];
        flops += 6;
      }
      rho_new += partial;
      co_await m.Compute(core, flops * kCyclesPerFlop);
      co_await omp.ReduceContribution(core);
    });

    double beta = rho_new / rho;
    rho = rho_new;
    // Phase 3: p = r + beta p (rewrites all of p).
    co_await omp.Parallel([&](int tid, int core) -> Task<> {
      auto range = omp.ChunkOf(n, tid);
      for (std::int64_t i = range.begin; i < range.end; ++i) {
        auto idx = static_cast<std::size_t>(i);
        p[idx] = r[idx] + beta * p[idx];
      }
      co_await m.Compute(core,
                         static_cast<Cycles>(range.end - range.begin) * 2 * kCyclesPerFlop);
      co_await ChargeWrite(m, core, p_region, static_cast<std::uint64_t>(range.begin),
                           static_cast<std::uint64_t>(range.end), 8);
    });
  }

  WorkloadResult result;
  result.cycles = m.exec().now() - t0;
  result.checksum = std::sqrt(rho);
  co_return result;
}

// ---------------------------------------------------------------------------
// FT: iterated FFT with block transpose.
// ---------------------------------------------------------------------------

namespace {

void Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    double angle = 2 * M_PI / static_cast<double>(len) * (inverse ? 1 : -1);
    std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        auto u = data[i + k];
        auto v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& v : data) {
      v /= static_cast<double>(n);
    }
  }
}

}  // namespace

Task<WorkloadResult> RunFt(OmpRuntime& omp, WorkloadParams params) {
  hw::Machine& m = omp.machine();
  // Round the size down to a power of two.
  std::int64_t n = 1;
  while (n * 2 <= params.size) {
    n *= 2;
  }
  sim::Rng rng(params.seed);
  std::vector<std::complex<double>> data(static_cast<std::size_t>(n));
  for (auto& v : data) {
    v = {rng.NextDouble() - 0.5, rng.NextDouble() - 0.5};
  }
  Region grid(m, 0, static_cast<std::uint64_t>(n) * 16);
  const int threads = omp.num_threads();
  const Cycles t0 = m.exec().now();

  for (int iter = 0; iter < params.iterations; ++iter) {
    // Forward on even iterations, inverse on odd (keeps values bounded).
    Fft(data, iter % 2 == 1);
    auto log2n = static_cast<std::uint64_t>(std::log2(static_cast<double>(n)));
    co_await omp.Parallel([&](int tid, int core) -> Task<> {
      auto range = omp.ChunkOf(n, tid);
      auto count = static_cast<std::uint64_t>(range.end - range.begin);
      // Local butterfly compute: ~5 flops per point per stage.
      co_await m.Compute(core, count * log2n * 5 * kCyclesPerFlop);
      // Block transpose: exchange a sub-block with every other thread.
      for (int other = 0; other < threads; ++other) {
        if (other == tid) {
          continue;
        }
        auto opeer = omp.ChunkOf(n, other);
        std::uint64_t sub =
            static_cast<std::uint64_t>(opeer.end - opeer.begin) /
            static_cast<std::uint64_t>(threads);
        std::uint64_t first = static_cast<std::uint64_t>(opeer.begin) +
                              static_cast<std::uint64_t>(tid) * sub;
        co_await ChargeRead(m, core, grid, first, first + sub, 16);
      }
      // Write back our (now transposed) chunk.
      co_await ChargeWrite(m, core, grid, static_cast<std::uint64_t>(range.begin),
                           static_cast<std::uint64_t>(range.end), 16);
    });
  }

  double checksum = 0;
  for (const auto& v : data) {
    checksum += std::abs(v);
  }
  WorkloadResult result;
  result.cycles = m.exec().now() - t0;
  result.checksum = checksum;
  co_return result;
}

// ---------------------------------------------------------------------------
// IS: bucket integer sort.
// ---------------------------------------------------------------------------

Task<WorkloadResult> RunIs(OmpRuntime& omp, WorkloadParams params) {
  hw::Machine& m = omp.machine();
  const std::int64_t n = params.size;
  constexpr std::int64_t kBuckets = 1024;
  constexpr std::uint32_t kMaxKey = 1 << 16;
  sim::Rng rng(params.seed);
  std::vector<std::uint32_t> keys(static_cast<std::size_t>(n));
  for (auto& k : keys) {
    k = static_cast<std::uint32_t>(rng.Below(kMaxKey));
  }
  std::vector<std::uint32_t> sorted(static_cast<std::size_t>(n));
  std::vector<std::int64_t> bucket_count(kBuckets, 0);
  Region buckets(m, 0, kBuckets * 8);  // the contended shared array
  Region out(m, 0, static_cast<std::uint64_t>(n) * 4);
  auto bucket_of = [](std::uint32_t key) {
    return static_cast<std::int64_t>(key) * kBuckets / kMaxKey;
  };
  const Cycles t0 = m.exec().now();

  for (int iter = 0; iter < params.iterations; ++iter) {
    std::fill(bucket_count.begin(), bucket_count.end(), 0);
    // Phase 1: histogram. Private counting is cheap; merging into the shared
    // bucket array makes every thread write every bucket line (contention).
    co_await omp.Parallel([&](int tid, int core) -> Task<> {
      auto range = omp.ChunkOf(n, tid);
      std::vector<std::int64_t> local(kBuckets, 0);
      for (std::int64_t i = range.begin; i < range.end; ++i) {
        ++local[static_cast<std::size_t>(bucket_of(keys[static_cast<std::size_t>(i)]))];
      }
      co_await m.Compute(core, static_cast<Cycles>(range.end - range.begin) * 2 *
                                   kCyclesPerIntOp);
      for (std::int64_t bk = 0; bk < kBuckets; ++bk) {
        bucket_count[static_cast<std::size_t>(bk)] += local[static_cast<std::size_t>(bk)];
      }
      co_await ChargeWrite(m, core, buckets, 0, kBuckets, 8);
    });
    // Phase 2: serial prefix sum (thread 0).
    std::vector<std::int64_t> offset(kBuckets, 0);
    for (std::int64_t bk = 1; bk < kBuckets; ++bk) {
      offset[static_cast<std::size_t>(bk)] = offset[static_cast<std::size_t>(bk - 1)] +
                                             bucket_count[static_cast<std::size_t>(bk - 1)];
    }
    co_await m.Compute(0, static_cast<Cycles>(kBuckets) * kCyclesPerIntOp);
    // Phase 3: permute into sorted order.
    std::vector<std::int64_t> cursor = offset;
    co_await omp.Parallel([&](int tid, int core) -> Task<> {
      auto range = omp.ChunkOf(n, tid);
      for (std::int64_t i = range.begin; i < range.end; ++i) {
        std::uint32_t key = keys[static_cast<std::size_t>(i)];
        auto& cur = cursor[static_cast<std::size_t>(bucket_of(key))];
        sorted[static_cast<std::size_t>(cur++)] = key;
      }
      co_await m.Compute(core, static_cast<Cycles>(range.end - range.begin) * 4 *
                                   kCyclesPerIntOp);
      co_await ChargeWrite(m, core, out, static_cast<std::uint64_t>(range.begin),
                           static_cast<std::uint64_t>(range.end), 4);
    });
    // The buckets are only bucket-ordered; finish each bucket on the host so
    // correctness is verifiable (NAS IS only ranks, we fully sort).
    std::int64_t begin = 0;
    for (std::int64_t bk = 0; bk < kBuckets; ++bk) {
      std::int64_t end = begin + bucket_count[static_cast<std::size_t>(bk)];
      std::sort(sorted.begin() + begin, sorted.begin() + end);
      begin = end;
    }
  }

  double checksum = 0;
  bool is_sorted = std::is_sorted(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); i += 97) {
    checksum += sorted[i];
  }
  WorkloadResult result;
  result.cycles = m.exec().now() - t0;
  result.checksum = is_sorted ? checksum : -1.0;
  co_return result;
}

// ---------------------------------------------------------------------------
// Barnes-Hut N-body.
// ---------------------------------------------------------------------------

namespace {

struct Body {
  double pos[3];
  double vel[3];
  double mass;
};

struct OctNode {
  double center[3];
  double half = 0;
  double com[3] = {0, 0, 0};
  double mass = 0;
  int body = -1;  // leaf body index, or -1
  int children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
};

class Octree {
 public:
  explicit Octree(double half) {
    OctNode root;
    root.center[0] = root.center[1] = root.center[2] = 0;
    root.half = half;
    nodes_.push_back(root);
  }

  void Insert(const std::vector<Body>& bodies, int b) { InsertAt(0, bodies, b); }

  void ComputeMass(const std::vector<Body>& bodies) { MassOf(0, bodies); }

  // Returns (force accumulation, interaction count) for body b.
  std::pair<std::array<double, 3>, int> Force(const std::vector<Body>& bodies, int b,
                                              double theta) const {
    std::array<double, 3> f{0, 0, 0};
    int interactions = 0;
    ForceFrom(0, bodies, b, theta, &f, &interactions);
    return {f, interactions};
  }

  std::size_t node_count() const { return nodes_.size(); }

 private:
  int ChildIndex(const OctNode& n, const double* pos) const {
    int idx = 0;
    for (int d = 0; d < 3; ++d) {
      if (pos[d] >= n.center[d]) {
        idx |= 1 << d;
      }
    }
    return idx;
  }

  void InsertAt(int ni, const std::vector<Body>& bodies, int b) {
    OctNode& n = nodes_[static_cast<std::size_t>(ni)];
    if (n.body < 0 && n.children[0] < 0 && n.mass == 0) {
      n.body = b;
      n.mass = 1;  // occupied marker; real mass fills in ComputeMass
      return;
    }
    if (n.body >= 0) {
      // Split the leaf.
      int old = n.body;
      n.body = -1;
      PushDown(ni, bodies, old);
    }
    PushDown(ni, bodies, b);
  }

  void PushDown(int ni, const std::vector<Body>& bodies, int b) {
    // Re-read the node each time: the vector may reallocate on child
    // creation.
    int child_slot = ChildIndex(nodes_[static_cast<std::size_t>(ni)],
                                bodies[static_cast<std::size_t>(b)].pos);
    if (nodes_[static_cast<std::size_t>(ni)].children[child_slot] < 0) {
      OctNode child;
      const OctNode& parent = nodes_[static_cast<std::size_t>(ni)];
      child.half = parent.half / 2;
      for (int d = 0; d < 3; ++d) {
        child.center[d] =
            parent.center[d] + ((child_slot >> d & 1) != 0 ? child.half : -child.half);
      }
      nodes_.push_back(child);
      nodes_[static_cast<std::size_t>(ni)].children[child_slot] =
          static_cast<int>(nodes_.size() - 1);
    }
    if (nodes_[static_cast<std::size_t>(ni)].half < 1e-9) {
      // Degenerate co-located bodies: keep at this node.
      return;
    }
    InsertAt(nodes_[static_cast<std::size_t>(ni)].children[child_slot], bodies, b);
  }

  void MassOf(int ni, const std::vector<Body>& bodies) {
    OctNode& n = nodes_[static_cast<std::size_t>(ni)];
    n.mass = 0;
    n.com[0] = n.com[1] = n.com[2] = 0;
    if (n.body >= 0) {
      const Body& b = bodies[static_cast<std::size_t>(n.body)];
      n.mass = b.mass;
      for (int d = 0; d < 3; ++d) {
        n.com[d] = b.pos[d];
      }
      return;
    }
    for (int c : n.children) {
      if (c < 0) {
        continue;
      }
      MassOf(c, bodies);
      const OctNode& ch = nodes_[static_cast<std::size_t>(c)];
      n.mass += ch.mass;
      for (int d = 0; d < 3; ++d) {
        n.com[d] += ch.mass * ch.com[d];
      }
    }
    if (n.mass > 0) {
      for (int d = 0; d < 3; ++d) {
        n.com[d] /= n.mass;
      }
    }
  }

  void ForceFrom(int ni, const std::vector<Body>& bodies, int b, double theta,
                 std::array<double, 3>* f, int* interactions) const {
    const OctNode& n = nodes_[static_cast<std::size_t>(ni)];
    if (n.mass <= 0 || n.body == b) {
      return;
    }
    const Body& body = bodies[static_cast<std::size_t>(b)];
    double dx = n.com[0] - body.pos[0];
    double dy = n.com[1] - body.pos[1];
    double dz = n.com[2] - body.pos[2];
    double dist2 = dx * dx + dy * dy + dz * dz + 1e-6;
    double dist = std::sqrt(dist2);
    if (n.body >= 0 || (2 * n.half) / dist < theta) {
      double g = n.mass / (dist2 * dist);
      (*f)[0] += g * dx;
      (*f)[1] += g * dy;
      (*f)[2] += g * dz;
      ++*interactions;
      return;
    }
    for (int c : n.children) {
      if (c >= 0) {
        ForceFrom(c, bodies, b, theta, f, interactions);
      }
    }
  }

  std::vector<OctNode> nodes_;
};

}  // namespace

Task<WorkloadResult> RunBarnesHut(OmpRuntime& omp, WorkloadParams params) {
  hw::Machine& m = omp.machine();
  const auto n = static_cast<int>(std::min<std::int64_t>(params.size, 4096));
  sim::Rng rng(params.seed);
  std::vector<Body> bodies(static_cast<std::size_t>(n));
  for (auto& b : bodies) {
    for (int d = 0; d < 3; ++d) {
      b.pos[d] = rng.NextDouble() * 2 - 1;
      b.vel[d] = 0;
    }
    b.mass = 1.0 / n;
  }
  const double dt = 0.01;
  const Cycles t0 = m.exec().now();
  std::vector<std::array<double, 3>> forces(static_cast<std::size_t>(n));

  for (int step = 0; step < params.iterations; ++step) {
    // Serial tree build on core 0: the Amdahl fraction.
    Octree tree(2.0);
    for (int b = 0; b < n; ++b) {
      tree.Insert(bodies, b);
    }
    tree.ComputeMass(bodies);
    co_await m.Compute(0, static_cast<Cycles>(n) *
                              static_cast<Cycles>(std::log2(n) + 1) * 24);
    // The tree is shared read-only: each worker pulls it into its cache.
    Region tree_region(m, 0, tree.node_count() * 64);
    co_await omp.Parallel([&](int tid, int core) -> Task<> {
      auto range = omp.ChunkOf(n, tid);
      co_await ChargeRead(m, core, tree_region, 0, tree.node_count(), 64);
      std::uint64_t interactions = 0;
      for (std::int64_t b = range.begin; b < range.end; ++b) {
        auto [f, count] = tree.Force(bodies, static_cast<int>(b), 0.5);
        forces[static_cast<std::size_t>(b)] = f;
        interactions += static_cast<std::uint64_t>(count);
      }
      co_await m.Compute(core, interactions * 24 * kCyclesPerFlop);
    });
    // Position update: embarrassingly parallel over own chunks.
    co_await omp.Parallel([&](int tid, int core) -> Task<> {
      auto range = omp.ChunkOf(n, tid);
      for (std::int64_t b = range.begin; b < range.end; ++b) {
        auto idx = static_cast<std::size_t>(b);
        for (int d = 0; d < 3; ++d) {
          bodies[idx].vel[d] += dt * forces[idx][d];
          bodies[idx].pos[d] += dt * bodies[idx].vel[d];
        }
      }
      co_await m.Compute(core,
                         static_cast<Cycles>(range.end - range.begin) * 12 * kCyclesPerFlop);
    });
  }

  double com[3] = {0, 0, 0};
  for (const auto& b : bodies) {
    for (int d = 0; d < 3; ++d) {
      com[d] += b.mass * b.pos[d];
    }
  }
  WorkloadResult result;
  result.cycles = m.exec().now() - t0;
  result.checksum = com[0] + com[1] + com[2];
  co_return result;
}

// ---------------------------------------------------------------------------
// Radiosity: task queue with lock contention.
// ---------------------------------------------------------------------------

Task<WorkloadResult> RunRadiosity(OmpRuntime& omp, WorkloadParams params) {
  hw::Machine& m = omp.machine();
  const auto n_patches = static_cast<int>(std::min<std::int64_t>(params.size, 4096));
  sim::Rng rng(params.seed);
  std::vector<double> radiosity(static_cast<std::size_t>(n_patches), 0.0);
  std::vector<double> emission(static_cast<std::size_t>(n_patches), 0.0);
  // A few emitters; form factors to ~16 random visible patches each.
  for (int i = 0; i < n_patches / 16 + 1; ++i) {
    emission[rng.Below(static_cast<std::uint64_t>(n_patches))] = 1.0;
  }
  std::vector<std::vector<std::pair<int, double>>> visible(
      static_cast<std::size_t>(n_patches));
  for (int i = 0; i < n_patches; ++i) {
    for (int k = 0; k < 16; ++k) {
      int j = static_cast<int>(rng.Below(static_cast<std::uint64_t>(n_patches)));
      visible[static_cast<std::size_t>(i)].emplace_back(j, rng.NextDouble() / 40.0);
    }
  }
  Region patches(m, 0, static_cast<std::uint64_t>(n_patches) * 8);
  proc::Mutex queue_lock(m, omp.flavor());
  std::deque<int> queue;
  const Cycles t0 = m.exec().now();

  for (int sweep = 0; sweep < params.iterations; ++sweep) {
    for (int i = 0; i < n_patches; ++i) {
      queue.push_back(i);
    }
    co_await omp.Parallel([&](int tid, int core) -> Task<> {
      (void)tid;
      while (true) {
        co_await queue_lock.Lock(core);
        if (queue.empty()) {
          co_await queue_lock.Unlock(core);
          break;
        }
        int patch = queue.front();
        queue.pop_front();
        co_await queue_lock.Unlock(core);
        // Gather incident energy from visible patches (reads shared lines),
        // update our patch (write its line).
        double incoming = emission[static_cast<std::size_t>(patch)];
        for (auto [j, ff] : visible[static_cast<std::size_t>(patch)]) {
          incoming += ff * radiosity[static_cast<std::size_t>(j)];
          co_await ChargeRead(m, core, patches, static_cast<std::uint64_t>(j),
                              static_cast<std::uint64_t>(j) + 1, 8);
        }
        radiosity[static_cast<std::size_t>(patch)] =
            0.5 * radiosity[static_cast<std::size_t>(patch)] + 0.5 * incoming;
        co_await m.Compute(core, 16 * 6 * kCyclesPerFlop);
        co_await ChargeWrite(m, core, patches, static_cast<std::uint64_t>(patch),
                             static_cast<std::uint64_t>(patch) + 1, 8);
      }
    });
  }

  double total = 0;
  for (double v : radiosity) {
    total += v;
  }
  WorkloadResult result;
  result.cycles = m.exec().now() - t0;
  result.checksum = total;
  co_return result;
}

const std::vector<WorkloadEntry>& AllWorkloads() {
  static const std::vector<WorkloadEntry> kAll = {
      {"CG", RunCg},           {"FT", RunFt},
      {"IS", RunIs},           {"Barnes-Hut", RunBarnesHut},
      {"radiosity", RunRadiosity},
  };
  return kAll;
}

}  // namespace mk::apps
