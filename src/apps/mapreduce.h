// Metis-style MapReduce workloads (Mao et al., "Optimizing MapReduce for
// multicore architectures"): map tasks write per-core intermediate buckets —
// each homed on the mapper's own NUMA node, so the map phase is contention
// free — and the reduce phase combines them pairwise up a binary combining
// tree, the same shape as sync::TreeBarrier's tournament. Rounds are
// separated by the team barrier, so under SyncFlavor::kScalable the whole
// job (bucket homing, tree reduce, tree barrier) is NUMA-aware end to end,
// while under the centralized flavors the identical algorithm pays the
// central counter and reduce-line storms — the comparison
// bench/sync_scaling.cc measures.
//
// Two jobs, both real computations on host data with checksums the tests
// verify: word count over a Zipf-ish synthetic corpus, and a value histogram
// (the Metis "hist" kernel).
#ifndef MK_APPS_MAPREDUCE_H_
#define MK_APPS_MAPREDUCE_H_

#include "apps/workloads.h"

namespace mk::apps {

// Word count: map counts word ids from the thread's corpus chunk into its
// per-core bucket; reduce merges buckets up the combining tree. Checksum:
// position-weighted sum of the final global counts.
Task<WorkloadResult> RunWordCount(proc::OmpRuntime& omp, WorkloadParams params);

// Histogram: 256 bins over synthetic doubles in [0,1); same bucket/reduce
// structure as word count with a smaller intermediate. Checksum mixes bin
// populations with bin indices.
Task<WorkloadResult> RunHistogram(proc::OmpRuntime& omp, WorkloadParams params);

// Separate from AllWorkloads(): the Figure 9 table and its goldens are
// pinned at the five NAS/SPLASH kernels.
const std::vector<WorkloadEntry>& MapReduceWorkloads();

}  // namespace mk::apps

#endif  // MK_APPS_MAPREDUCE_H_
