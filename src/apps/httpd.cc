#include "apps/httpd.h"

#include <sstream>

#include "fault/fault.h"
#include "sim/random.h"
#include "trace/trace.h"

namespace mk::apps {
bool ParseHttpRequest(const std::string& text, HttpRequest* out) {
  std::size_t line_end = text.find("\r\n");
  if (line_end == std::string::npos) {
    line_end = text.find('\n');
  }
  std::string line = text.substr(0, line_end);
  if (line.size() > kMaxRequestBytes) {
    return false;  // request line alone exceeds the buffer cap
  }
  std::istringstream iss(line);
  std::string target;
  std::string version;
  if (!(iss >> out->method >> target >> version)) {
    return false;
  }
  if (out->method != "GET" && out->method != "HEAD") {
    return false;
  }
  std::size_t q = target.find('?');
  if (q == std::string::npos) {
    out->path = target;
    out->query.clear();
  } else {
    out->path = target.substr(0, q);
    out->query = target.substr(q + 1);
  }
  return true;
}

std::string RenderHttpResponse(const HttpResponse& resp) {
  std::ostringstream oss;
  oss << "HTTP/1.0 " << resp.status << (resp.status == 200 ? " OK" : " Error") << "\r\n"
      << "Content-Type: " << resp.content_type << "\r\n"
      << "Content-Length: " << resp.body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << resp.body;
  return oss.str();
}

std::string RenderHttpResponse11(const HttpResponse& resp, bool keep_alive) {
  std::ostringstream oss;
  oss << "HTTP/1.1 " << resp.status << (resp.status == 200 ? " OK" : " Error") << "\r\n"
      << "Content-Type: " << resp.content_type << "\r\n"
      << "Content-Length: " << resp.body.size() << "\r\n"
      << "Connection: " << (keep_alive ? "keep-alive" : "close") << "\r\n\r\n"
      << resp.body;
  return oss.str();
}

void HttpRequestFramer::Append(const std::uint8_t* data, std::size_t len) {
  if (overflowed_ || len == 0) {
    return;
  }
  buf_.append(reinterpret_cast<const char*>(data), len);
  if (next_end_ == std::string::npos) {
    Rescan(scan_from_);
  }
  if (next_end_ == std::string::npos && buf_.size() > kMaxRequestBytes) {
    overflowed_ = true;
  }
}

void HttpRequestFramer::Rescan(std::size_t from) {
  // The terminator may straddle the previous chunk's tail: back up by up to
  // three bytes so a split "\r\n\r\n" is still found exactly once.
  std::size_t start = from > 3 ? from - 3 : 0;
  std::size_t pos = buf_.find("\r\n\r\n", start);
  if (pos == std::string::npos) {
    next_end_ = std::string::npos;
    scan_from_ = buf_.size();
  } else {
    next_end_ = pos + 4;
  }
}

bool HttpRequestFramer::PopRequest(std::string* out) {
  if (next_end_ == std::string::npos) {
    return false;
  }
  out->assign(buf_, 0, next_end_);
  buf_.erase(0, next_end_);
  scan_from_ = 0;
  Rescan(0);
  // A pipelined remainder must respect the cap on its own.
  if (next_end_ == std::string::npos && buf_.size() > kMaxRequestBytes) {
    overflowed_ = true;
  }
  return true;
}

std::string StaticIndexPage() {
  // ~4.1 KB, matching the paper's static page size.
  std::string body =
      "<html><head><title>Barrelfish multikernel reproduction</title></head><body>\n"
      "<h1>The multikernel: a new OS architecture for scalable multicore systems</h1>\n";
  while (body.size() < 4096) {
    body +=
        "<p>The machine is a network of cores; the OS is a distributed system of\n"
        "processes communicating by message passing, with replicated state kept\n"
        "consistent by agreement protocols.</p>\n";
  }
  body += "</body></html>\n";
  return body;
}

HttpServer::HttpServer(hw::Machine& machine, net::NetStack& stack, std::uint16_t port,
                       DbQueryFn db_query, Cycles request_cost)
    : machine_(machine), stack_(stack), port_(port), db_query_(std::move(db_query)),
      request_cost_(request_cost), pending_ready_(machine.exec()) {}

namespace {
// Fail-stop check for the serving tasks: a handler on a halted core abandons
// its work (no response, no accounting), exactly like a process dying with
// its core. Injector-gated, so plain runs never evaluate the predicate.
bool ServingCoreHalted(hw::Machine& machine, int core) {
  fault::Injector* inj = fault::Injector::active();
  return inj != nullptr && inj->CoreHalted(core, machine.exec().now());
}
}  // namespace

Task<HttpResponse> HttpServer::Handle(const HttpRequest& req) {
  ++requests_served_;
  co_await machine_.Compute(stack_.core(), request_cost_);
  HttpResponse resp;
  if (req.path == "/" || req.path == "/index.html") {
    resp.body = StaticIndexPage();
    co_return resp;
  }
  if (req.path == "/query" && db_query_) {
    // /query?sql=... with '+' encoding spaces (the only reserved character
    // the generated queries contain).
    std::string sql = req.query.rfind("sql=", 0) == 0 ? req.query.substr(4) : req.query;
    for (char& ch : sql) {
      if (ch == '+') {
        ch = ' ';
      }
    }
    resp.body = co_await db_query_(sql);
    co_return resp;
  }
  if (req.path == "/buy" && db_exec_) {
    // /buy?wid=N&sql=... — split on the FIRST '&' only: the SQL itself
    // contains '=' (UPDATE ... SET col = v), so naive param splitting would
    // shred it. '+' encodes spaces, as on /query.
    std::uint64_t wid = 0;
    bool wid_ok = false;
    std::string sql;
    std::size_t amp = req.query.find('&');
    if (req.query.rfind("wid=", 0) == 0 && amp != std::string::npos) {
      // The wid must be all digits up to the '&': a truncated parse of a
      // malformed wid (wid=12x) could collide with another client's write id
      // and dedup a write that was never applied.
      wid_ok = amp > 4;
      for (std::size_t i = 4; i < amp; ++i) {
        char ch = req.query[i];
        if (ch < '0' || ch > '9') {
          wid_ok = false;
          break;
        }
        wid = wid * 10 + static_cast<std::uint64_t>(ch - '0');
      }
      sql = req.query.substr(amp + 1);
      if (sql.rfind("sql=", 0) == 0) {
        sql = sql.substr(4);
      }
    }
    if (!wid_ok || sql.empty()) {
      resp.status = 400;
      resp.body = "bad buy request";
      co_return resp;
    }
    for (char& ch : sql) {
      if (ch == '+') {
        ch = ' ';
      }
    }
    resp.body = co_await db_exec_(wid, sql);
    co_return resp;
  }
  resp.status = 404;
  resp.body = "<html><body>not found</body></html>";
  co_return resp;
}

Task<> HttpServer::ServeConnection(net::NetStack::TcpConn* conn) {
  if (keep_.enabled) {
    co_await ServeConnectionKeepAlive(conn);
    co_return;
  }
  std::string request_text;
  while (true) {
    std::vector<std::uint8_t> chunk = co_await conn->Read();
    if (chunk.empty()) {
      co_return;  // peer closed before a full request
    }
    request_text.append(chunk.begin(), chunk.end());
    if (request_text.find("\r\n\r\n") != std::string::npos ||
        request_text.find('\n') != std::string::npos ||
        request_text.size() > kMaxRequestBytes) {
      break;
    }
  }
  if (ServingCoreHalted(machine_, stack_.core())) {
    co_return;  // fail-stop mid-request: the client never hears back
  }
  HttpRequest req;
  HttpResponse resp;
  if (request_text.size() > kMaxRequestBytes ||
      !ParseHttpRequest(request_text, &req)) {
    resp.status = 400;
    resp.body = "bad request";
  } else {
    resp = co_await Handle(req);
  }
  if (ServingCoreHalted(machine_, stack_.core())) {
    co_return;
  }
  co_await stack_.TcpSend(*conn, RenderHttpResponse(resp));
  co_await stack_.TcpClose(*conn);
  stack_.Release(conn);  // no-op in legacy mode; reap-enabling in lifecycle
}

Task<> HttpServer::ServeConnectionKeepAlive(net::NetStack::TcpConn* conn) {
  HttpRequestFramer framer;
  int served_on_conn = 0;
  Cycles request_start = 0;
  bool open = true;
  while (open) {
    // Accumulate bytes until a complete request, a deadline, or a close.
    while (!framer.HasRequest() && !framer.overflowed()) {
      Cycles wait = 0;
      if (framer.buffered() == 0) {
        wait = keep_.idle_timeout;
      } else if (keep_.header_deadline > 0) {
        // The slowloris budget is total-per-request, measured from the
        // request's first byte — a one-byte-per-interval trickler exhausts
        // it no matter how it paces.
        Cycles elapsed = machine_.exec().now() - request_start;
        wait = elapsed >= keep_.header_deadline ? 1 : keep_.header_deadline - elapsed;
      }
      bool ok = co_await stack_.WaitReadable(*conn, wait);
      if (ServingCoreHalted(machine_, stack_.core())) {
        co_return;  // fail-stop: the handler dies with its core
      }
      if (!ok) {
        if (framer.buffered() == 0) {
          ++idle_closes_;  // idle keep-alive connection: close quietly
          trace::Emit<trace::Category::kConn>(trace::EventId::kConnTimeout,
                                              machine_.exec().now(), stack_.core(),
                                              /*kind=*/1);
          open = false;
          break;
        }
        // Slowloris: bytes trickled in but the request never completed
        // within its budget. Answer 408 and count it as a shed so the
        // admission layer's books include defended connections.
        ++shed_progress_;
        trace::Emit<trace::Category::kRecover>(trace::EventId::kRecoverShed,
                                               machine_.exec().now(), stack_.core(),
                                               /*cause=*/2);
        trace::Emit<trace::Category::kConn>(trace::EventId::kConnTimeout,
                                            machine_.exec().now(), stack_.core(),
                                            /*kind=*/2);
        HttpResponse resp;
        resp.status = 408;
        resp.body = "request timeout";
        co_await stack_.TcpSend(*conn, RenderHttpResponse11(resp, false));
        open = false;
        break;
      }
      bool was_empty = framer.buffered() == 0;
      std::vector<std::uint8_t> chunk = co_await conn->Read();
      if (chunk.empty()) {
        open = false;  // peer closed
        break;
      }
      if (was_empty) {
        request_start = machine_.exec().now();
      }
      framer.Append(chunk.data(), chunk.size());
    }
    if (!open) {
      break;
    }
    if (framer.overflowed()) {
      ++bad_requests_;
      HttpResponse resp;
      resp.status = 400;
      resp.body = "bad request";
      co_await stack_.TcpSend(*conn, RenderHttpResponse11(resp, false));
      break;
    }
    // Serve the buffered burst of pipelined requests in order, bounded by
    // max_pipeline per wakeup; depth beyond the bound closes the connection
    // after serving the bounded prefix.
    int burst = 0;
    std::string text;
    while (open && framer.PopRequest(&text)) {
      bool last = false;
      HttpRequest req;
      HttpResponse resp;
      if (!ParseHttpRequest(text, &req)) {
        ++bad_requests_;
        resp.status = 400;
        resp.body = "bad request";
        last = true;
      } else {
        resp = co_await Handle(req);
      }
      ++served_on_conn;
      ++burst;
      if (!last && keep_.max_requests > 0 && served_on_conn >= keep_.max_requests) {
        ++budget_closes_;  // per-connection request budget exhausted
        last = true;
      }
      if (!last && keep_.max_pipeline > 0 && burst >= keep_.max_pipeline &&
          framer.HasRequest()) {
        ++pipeline_closes_;
        last = true;
      }
      if (ServingCoreHalted(machine_, stack_.core())) {
        co_return;
      }
      co_await stack_.TcpSend(*conn, RenderHttpResponse11(resp, !last));
      if (last) {
        open = false;
      }
    }
    if (open && framer.buffered() > 0) {
      request_start = machine_.exec().now();  // partial next request began now
    }
  }
  co_await stack_.TcpClose(*conn);
  stack_.Release(conn);
}

Task<> HttpServer::ShedConnection(net::NetStack::TcpConn* conn) {
  HttpResponse resp;
  resp.status = 503;
  resp.body = "overloaded";
  // Named local, not a ternary inside the co_await: a conditional operator's
  // class-type temporary in an await expression trips a GCC coroutine
  // frame-cleanup bug (both branch cleanups run -> double free).
  std::string payload = keep_.enabled ? RenderHttpResponse11(resp, false)
                                      : RenderHttpResponse(resp);
  co_await stack_.TcpSend(*conn, payload);
  co_await stack_.TcpClose(*conn);
  stack_.Release(conn);
}

Task<> HttpServer::Worker() {
  while (true) {
    while (pending_.empty()) {
      co_await pending_ready_.Wait();
    }
    auto [conn, enqueued_at] = pending_.front();
    pending_.pop_front();
    if (ServingCoreHalted(machine_, stack_.core())) {
      co_return;  // fail-stop: the worker dies with its core
    }
    if (admission_.queue_deadline > 0 &&
        machine_.exec().now() - enqueued_at > admission_.queue_deadline) {
      ++shed_deadline_;
      trace::Emit<trace::Category::kRecover>(trace::EventId::kRecoverShed,
                                             machine_.exec().now(), stack_.core(),
                                             /*cause=*/1);
      co_await ShedConnection(conn);
      continue;
    }
    co_await ServeConnection(conn);
  }
}

Task<> HttpServer::Serve() {
  auto& listener = stack_.TcpListen(port_);
  for (int w = 0; w < admission_.workers; ++w) {
    machine_.exec().Spawn(Worker());
  }
  while (true) {
    net::NetStack::TcpConn* conn = co_await listener.Accept();
    if (admission_.workers == 0) {
      machine_.exec().Spawn(ServeConnection(conn));  // legacy: unbounded
      continue;
    }
    if (ServingCoreHalted(machine_, stack_.core())) {
      co_return;
    }
    if (admission_.max_pending > 0 &&
        static_cast<int>(pending_.size()) >= admission_.max_pending) {
      ++shed_queue_full_;
      trace::Emit<trace::Category::kRecover>(trace::EventId::kRecoverShed,
                                             machine_.exec().now(), stack_.core(),
                                             /*cause=*/0);
      machine_.exec().Spawn(ShedConnection(conn));
      continue;
    }
    pending_.emplace_back(conn, machine_.exec().now());
    pending_ready_.Signal();
  }
}

void PopulateTpcw(Database* db, int items, std::uint64_t seed) {
  db->Exec("CREATE TABLE authors (a_id INT, a_name TEXT)");
  db->Exec("CREATE TABLE items (i_id INT, i_title TEXT, i_a_id INT, i_stock INT, "
           "i_cost INT)");
  sim::Rng rng(seed);
  int n_authors = items / 4 + 1;
  for (int a = 0; a < n_authors; ++a) {
    db->Exec("INSERT INTO authors VALUES (" + std::to_string(a) + ", 'author-" +
             std::to_string(a) + "')");
  }
  for (int i = 0; i < items; ++i) {
    db->Exec("INSERT INTO items VALUES (" + std::to_string(i) + ", 'item-" +
             std::to_string(i) + "', " +
             std::to_string(rng.Below(static_cast<std::uint64_t>(n_authors))) + ", " +
             std::to_string(rng.Below(1000)) + ", " + std::to_string(rng.Below(10000)) +
             ")");
  }
}

std::string TpcwQuery(int item_id) {
  return "SELECT i_id, i_title, i_stock, i_cost FROM items WHERE i_id = " +
         std::to_string(item_id) + " LIMIT 1";
}

}  // namespace mk::apps
