// Monitors (section 4.4): the distinguished user-space processes that
// collectively coordinate system-wide state.
//
// One monitor runs on each core. Monitors exchange messages over a mesh of
// URPC channels (routes and channel placement are computed from the SKB at
// boot, as in section 5.1) and implement the agreement protocols that keep
// per-core replicas consistent:
//
//   * one-phase commit for order-insensitive operations — a TLB shootdown is
//     a single multicast round of invalidate + ack (section 5.1);
//   * two-phase commit for capability retype/revoke, which must be globally
//     ordered (section 4.7, Figure 8): prepare/vote, then commit or abort;
//   * capability transfer between cores (section 4.8), with the monitor
//     checking transferability and revocation status;
//   * waking blocked local dispatchers on behalf of remote senders.
//
// Four routing disciplines are supported (Figure 6): broadcast over one
// shared line, unicast, two-level multicast with one aggregation core per
// package, and NUMA-aware multicast with leader-local buffers and
// farthest-first send order.
#ifndef MK_MONITOR_MONITOR_H_
#define MK_MONITOR_MONITOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "caps/capability.h"
#include "hw/machine.h"
#include "kernel/cpu_driver.h"
#include "monitor/proto.h"
#include "recover/config.h"
#include "sim/event.h"
#include "sim/task.h"
#include "sim/types.h"
#include "skb/skb.h"
#include "urpc/channel.h"

namespace mk::monitor {

using sim::Cycles;
using sim::Task;

// Recovery timing (phase timeout, heartbeat period, 2PC retry budget) lives
// in recover::RecoveryConfig — see src/recover/config.h. It is consulted only
// while a fault::Injector is installed.

class MonitorSystem;

class Monitor {
 public:
  Monitor(MonitorSystem& sys, int core);
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  int core() const { return core_; }
  caps::CapDb& caps() { return caps_; }

  // --- Initiator API (runs on this monitor's core) ---

  struct CollectiveResult {
    Cycles latency = 0;
    bool all_yes = true;
    bool retryable = false;  // some no-vote was a kConflict (lock contention)
    bool timed_out = false;  // a participant never answered within the phase timeout
  };

  // One-phase commit: propagate a TLB-range invalidation to every core and
  // wait for all acknowledgements. With `flags.skip_tlb`, measures the raw
  // messaging protocol only (Figure 6); with `flags.raw`, monitor demux
  // charges are skipped too.
  Task<CollectiveResult> GlobalInvalidate(std::uint64_t vaddr, std::uint32_t pages,
                                          Protocol proto, OpFlags flags,
                                          std::uint16_t ncores = 0);

  // Two-phase commit (Figure 8): prepare the capability operation on every
  // replica; if all vote yes, commit, else abort.
  //
  // The three ways out are distinct: a clean validation abort (a replica
  // voted no for a permanent reason — retrying cannot help, so we don't),
  // exhausting the retry budget on conflicts, or committing. `latency` is
  // end-to-end wall time including losing attempts; `backoff` is the portion
  // spent sleeping between attempts, so callers measuring protocol cost can
  // subtract it.
  enum class TwoPcOutcome : std::uint8_t {
    kCommitted,
    kAborted,           // permanent validation failure; no retries wasted
    kRetriesExhausted,  // kMaxAttempts conflict rounds, never won the lock
  };
  struct TwoPcResult {
    bool committed = false;
    Cycles latency = 0;
    TwoPcOutcome outcome = TwoPcOutcome::kAborted;
    int attempts = 0;
    Cycles backoff = 0;  // cycles slept between losing attempts
  };
  Task<TwoPcResult> GlobalRetype(caps::CapId target, caps::CapType new_type,
                                 std::uint64_t child_bytes, std::uint32_t count,
                                 Protocol proto, OpFlags flags = {},
                                 std::uint16_t ncores = 0);
  Task<TwoPcResult> GlobalRevoke(caps::CapId target, Protocol proto, OpFlags flags = {});

  // Cross-core capability transfer (section 4.8): checks the type is
  // transferable and the capability is not pending revocation, then installs
  // a copy in the destination core's replica.
  Task<caps::CapErr> SendCap(int dest_core, caps::CapId id);

  // The monitor message loop; spawned by MonitorSystem::Boot.
  Task<> Loop();

  // Runs a raw collective with a caller-built message (tests and the
  // figure-6 bench compose OpMsg directly).
  Task<CollectiveResult> RunCollectiveForTest(OpMsg msg) { return RunCollective(msg); }

  // Services built on the monitors (e.g. the replicated file system) register
  // a handler for OpKind::kCustom operations; the handler's return value is
  // the replica's vote. The op_id identifies the operation's payload in the
  // service's own (charged) transfer buffers.
  using CustomHandler = std::function<Task<bool>(const OpMsg&)>;
  void SetCustomHandler(CustomHandler handler) { custom_ = std::move(handler); }

  // Allocates a fresh op id for an initiator-composed message.
  std::uint64_t NewOpId() {
    return (static_cast<std::uint64_t>(core_) << 48) | next_op_++;
  }

  // Statistics.
  std::uint64_t messages_handled() const { return messages_handled_; }

  // In-flight aggregation/initiator states (invariant checks: a quiesced run
  // must leave none behind).
  std::size_t inflight_ops() const { return ops_.size(); }

 private:
  friend class MonitorSystem;

  struct OpState {
    int pending = 0;
    bool vote = true;
    bool retryable = false;
    int parent = -1;           // core to ack when the subtree completes (-1: initiator)
    bool raw = false;
    sim::Event* done = nullptr;  // initiator completion
  };

  // A replica's local verdict on an operation: the vote, and whether a no
  // was for a transient reason (lock conflict) that a retry may resolve.
  struct ApplyResult {
    bool vote = true;
    bool retryable = false;
  };

  Task<> Dispatch(const urpc::Message& msg, int from);
  Task<> HandleOp(OpMsg msg, int from);
  Task<> HandleAck(AckMsg ack);
  // Applies the op locally (TLB invalidate / cap prepare / commit / abort).
  Task<ApplyResult> ApplyAction(const OpMsg& msg);
  // Children this monitor must forward to for the op's route (empty unless
  // this core is the aggregation leader of its package).
  std::vector<int> ChildrenFor(const OpMsg& msg) const;
  Task<> SendAck(int to, std::uint64_t op_id, bool vote, bool retryable, bool raw);
  Task<CollectiveResult> RunCollective(OpMsg msg);
  Task<TwoPcResult> TwoPhase(OpMsg msg);
  caps::CapDb::PreparedOp ToCapOp(const OpMsg& msg) const;

  MonitorSystem& sys_;
  int core_;
  caps::CapDb caps_;
  std::map<std::uint64_t, OpState> ops_;
  std::map<std::uint64_t, std::vector<caps::CapId>> committed_children_;
  CustomHandler custom_;
  sim::Event work_;
  std::uint64_t next_op_ = 1;
  std::uint64_t messages_handled_ = 0;
  std::map<int, std::uint64_t> bcast_seen_;
  bool halt_traced_ = false;  // kFaultCoreHalt emitted once per halt
};

// Boots and owns the monitors, their channel mesh, routes, and the broadcast
// groups. Also owns the per-core root capabilities.
class MonitorSystem {
 public:
  MonitorSystem(hw::Machine& machine, skb::Skb& skb,
                std::vector<std::unique_ptr<kernel::CpuDriver>>& drivers);
  ~MonitorSystem();

  // Creates channels and routes and spawns every monitor's loop. The SKB
  // must already be populated (and ideally measured).
  void Boot();

  // Stops all monitor loops (benches call this when done; the executor then
  // drains).
  void Shutdown();

  Monitor& on(int core) { return *monitors_[static_cast<std::size_t>(core)]; }
  hw::Machine& machine() { return machine_; }
  skb::Skb& skb() { return skb_; }
  kernel::CpuDriver& driver(int core) { return *drivers_[static_cast<std::size_t>(core)]; }
  int num_cores() const { return machine_.num_cores(); }
  bool running() const { return running_; }

  // Installs the same root RAM capability in every replica and returns its id
  // (identical across replicas by construction).
  caps::CapId InstallRootCap(std::uint64_t base, std::uint64_t bytes);

  // Replica consistency check: true if all per-core capability databases have
  // the same digest.
  bool ReplicasConsistent() const;

  // Like ReplicasConsistent, but only over online cores: after a fail-stop
  // halt, the dead replica may legitimately lag (e.g. a prepare it never
  // aborted), and agreement is required among the survivors only.
  bool LiveReplicasConsistent() const;

  // --- Failure detection and recovery (fault injection only) ---
  //
  // A fail-stop core is detected either by a 2PC phase timeout at the
  // initiator or by the heartbeat sweep; detection marks it offline (routes
  // and collectives exclude it, its monitor parks) and failed. All of this
  // machinery is armed only while a fault::Injector is installed, so plain
  // runs schedule no extra events.

  // True if `core` was taken out of the view by failure (as opposed to a
  // clean OfflineCore power-down).
  bool CoreFailed(int core) const { return failed_[static_cast<std::size_t>(core)]; }

  // Sweeps the injector's halt schedule and excludes every newly dead core
  // from the view. Returns how many cores were excluded by this call.
  int ExcludeHaltedCores();

  // Called once per newly excluded core, after it is marked offline+failed,
  // in exclusion order. mk::recover's MembershipService subscribes here to
  // drive a membership view change; the hook must not block (it may spawn).
  using ExclusionHook = std::function<void(int dead_core)>;
  void SetExclusionHook(ExclusionHook hook) { exclusion_hook_ = std::move(hook); }

  // Periodic ExcludeHaltedCores sweep; spawned by Boot when an Injector is
  // installed, so participants that are *not* initiating 2PC also learn of
  // dead peers.
  Task<> HeartbeatLoop();

  const skb::MulticastRoute& RouteFor(int source, bool numa_aware);

  // --- Core hotplug / power management (sections 3.3 and 4.4) ---
  //
  // Replication makes changes to the running core set a distributed-systems
  // problem the monitors already know how to solve: taking a core offline is
  // an agreement round announcing the new view (after which collectives and
  // multicast routes exclude it and its monitor parks); bringing it back is a
  // state transfer of the capability replica from a live peer followed by an
  // announcement round.

  bool IsOnline(int core) const { return online_[static_cast<std::size_t>(core)]; }
  int OnlineCount() const;

  // Takes `core` out of the running set; initiated by `initiator`'s monitor.
  // No-op if already offline. The initiator itself cannot be taken offline.
  Task<bool> OfflineCore(int initiator, int core);

  // Brings `core` back: replica catch-up from the initiator (charged
  // proportionally to the replica size), then a view-change round.
  Task<bool> OnlineCore(int initiator, int core);

  // Multicast route with offline cores removed and dead leaders replaced by
  // their first online member.
  skb::MulticastRoute EffectiveRoute(int source, bool numa_aware);

 private:
  friend class Monitor;

  // Channel between monitor cores; created lazily, registered with the
  // receiver. `numa_node` < 0 means the default (sender-local) placement.
  urpc::Channel& GetChannel(int from, int to, int numa_node);

  struct BroadcastGroup {
    sim::Addr line = 0;
    std::uint64_t seq = 0;
    OpMsg current;  // host-side copy of the published message
  };
  BroadcastGroup& GetBroadcastGroup(int source);

  hw::Machine& machine_;
  skb::Skb& skb_;
  std::vector<std::unique_ptr<kernel::CpuDriver>>& drivers_;
  std::vector<std::unique_ptr<Monitor>> monitors_;
  std::map<std::tuple<int, int, int>, std::unique_ptr<urpc::Channel>> channels_;
  std::map<int, std::vector<std::pair<int, urpc::Channel*>>> in_channels_;  // per receiver
  std::map<int, BroadcastGroup> bcast_;
  std::map<std::pair<int, bool>, skb::MulticastRoute> routes_;
  std::vector<bool> online_;
  std::vector<bool> failed_;
  ExclusionHook exclusion_hook_;
  bool running_ = false;
};

}  // namespace mk::monitor

#endif  // MK_MONITOR_MONITOR_H_
