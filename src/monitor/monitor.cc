#include "monitor/monitor.h"

#include <algorithm>

#include "fault/fault.h"

namespace mk::monitor {
namespace {

// Shootdown-wave flow id: one arrow per (op, replica core). op_ids embed the
// initiator core in the top 16 bits, so the low 16 of the serial part plus
// the source core keep concurrent initiators' waves distinct.
std::uint64_t ShootdownFlow(std::uint64_t op_id, int dest_core) {
  return trace::kFlowShootdown | ((op_id & 0xffff'ffff) << 16) |
         ((op_id >> 48) << 8) | static_cast<std::uint64_t>(dest_core);
}

}  // namespace

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kBroadcast: return "Broadcast";
    case Protocol::kUnicast: return "Unicast";
    case Protocol::kMulticast: return "Multicast";
    case Protocol::kNumaMulticast: return "NUMA-Aware Multicast";
  }
  return "?";
}

Monitor::Monitor(MonitorSystem& sys, int core)
    : sys_(sys), core_(core), work_(sys.machine().exec()) {}

caps::CapDb::PreparedOp Monitor::ToCapOp(const OpMsg& msg) const {
  caps::CapDb::PreparedOp op;
  op.op_id = msg.op_id;
  op.target = msg.cap_target;
  op.is_revoke = msg.cap_is_revoke != 0;
  op.new_type = static_cast<caps::CapType>(msg.cap_new_type);
  op.child_bytes = msg.cap_child_bytes;
  op.count = msg.cap_count;
  return op;
}

Task<Monitor::ApplyResult> Monitor::ApplyAction(const OpMsg& msg) {
  hw::Machine& m = sys_.machine();
  switch (msg.kind) {
    case OpKind::kInvalidate:
      if (!msg.skip_tlb()) {
        for (std::uint32_t i = 0; i < msg.pages; ++i) {
          co_await m.tlb(core_).Invalidate(msg.vaddr + i * hw::kPageSize);
        }
        if (msg.source != core_) {
          // Terminates the shootdown-wave flow the initiator originated in
          // RunCollective (one arrow per replica core).
          trace::Emit<trace::Category::kTlb>(trace::EventId::kTlbShootdown,
                                             m.exec().now(), core_, msg.vaddr, 0,
                                             ShootdownFlow(msg.op_id, core_),
                                             trace::Phase::kFlowIn);
        }
      }
      co_return ApplyResult{};
    case OpKind::kPrepare: {
      const caps::CapErr err = caps_.Prepare(ToCapOp(msg));
      const bool ok = err == caps::CapErr::kOk;
      trace::Emit<trace::Category::kMonitor>(trace::EventId::kCapPrepare, m.exec().now(),
                                             core_, msg.op_id, ok ? 1 : 0);
      // Only a lock conflict is worth retrying; every other refusal (bad
      // cap, bad range, live descendants...) is permanent.
      co_return ApplyResult{ok, err == caps::CapErr::kConflict};
    }
    case OpKind::kCommit:
      committed_children_[msg.op_id] = caps_.Commit(msg.op_id);
      trace::Emit<trace::Category::kMonitor>(trace::EventId::kCapCommit, m.exec().now(),
                                             core_, msg.op_id);
      co_return ApplyResult{};
    case OpKind::kAbort:
      caps_.Abort(msg.op_id);
      trace::Emit<trace::Category::kMonitor>(trace::EventId::kCapAbort, m.exec().now(),
                                             core_, msg.op_id);
      co_return ApplyResult{};
    case OpKind::kCapSend: {
      caps::Capability cap;
      cap.type = static_cast<caps::CapType>(msg.cap_new_type);
      cap.base = msg.vaddr;
      cap.bytes = msg.cap_child_bytes;
      trace::Emit<trace::Category::kMonitor>(trace::EventId::kCapTransfer, m.exec().now(),
                                             core_, msg.op_id);
      co_return ApplyResult{caps_.InsertRemote(cap).err == caps::CapErr::kOk, false};
    }
    case OpKind::kPing:
      co_return ApplyResult{};
    case OpKind::kCustom:
      co_return ApplyResult{custom_ ? co_await custom_(msg) : true, false};
  }
  co_return ApplyResult{};
}

std::vector<int> Monitor::ChildrenFor(const OpMsg& msg) const {
  if (msg.proto != Protocol::kMulticast && msg.proto != Protocol::kNumaMulticast) {
    return {};
  }
  int limit = msg.ncores == 0 ? sys_.machine().num_cores() : msg.ncores;
  const skb::MulticastRoute route =
      sys_.EffectiveRoute(msg.source, msg.proto == Protocol::kNumaMulticast);
  for (const auto& node : route.nodes) {
    if (node.leader != core_) {
      continue;
    }
    std::vector<int> children;
    for (int member : node.members) {
      if (member < limit) {
        children.push_back(member);
      }
    }
    return children;
  }
  return {};
}

Task<> Monitor::SendAck(int to, std::uint64_t op_id, bool vote, bool retryable,
                        bool raw) {
  // A fail-stop core acknowledges nothing: the coroutine handling the op may
  // have been in flight when the halt struck, so the cut is here, at the
  // reply.
  if (fault::Injector* inj = fault::Injector::active();
      inj != nullptr && inj->CoreHalted(core_, sys_.machine().exec().now())) {
    co_return;
  }
  AckMsg ack;
  ack.op_id = op_id;
  ack.vote = vote ? 1 : 0;
  ack.retryable = retryable ? 1 : 0;
  (void)raw;
  co_await sys_.GetChannel(core_, to, /*numa_node=*/-1).Send(urpc::Pack(kTagAck, ack));
}

Task<> Monitor::HandleOp(OpMsg msg, int from) {
  ++messages_handled_;
  hw::Machine& m = sys_.machine();
  trace::Emit<trace::Category::kMonitor>(trace::EventId::kMonHandleOp, m.exec().now(),
                                         core_, msg.op_id,
                                         static_cast<std::uint64_t>(msg.kind));
  if (msg.kind == OpKind::kAbort) {
    // Presumed abort: if this core is an aggregation leader still waiting on
    // a (possibly dead) child's prepare ack for this op, the initiator's
    // abort supersedes that round — drop the stale aggregation state so no
    // in-flight-op entry leaks.
    ops_.erase(msg.op_id);
  }
  if (!msg.raw()) {
    co_await m.Compute(core_, m.cost().msg_demux);
  }
  if (msg.kind == OpKind::kCapSend) {
    ApplyResult r = co_await ApplyAction(msg);
    co_await SendAck(from, msg.op_id, r.vote, r.retryable, msg.raw());
    co_return;
  }
  ApplyResult r = co_await ApplyAction(msg);
  std::vector<int> children = ChildrenFor(msg);
  if (children.empty()) {
    co_await SendAck(from, msg.op_id, r.vote, r.retryable, msg.raw());
    co_return;
  }
  OpState st;
  st.pending = static_cast<int>(children.size());
  st.vote = r.vote;
  st.retryable = r.retryable;
  st.parent = from;
  st.raw = msg.raw();
  ops_[msg.op_id] = st;
  for (int child : children) {
    int node = msg.proto == Protocol::kNumaMulticast ? m.topo().PackageOf(core_) : -1;
    co_await sys_.GetChannel(core_, child, node).Send(urpc::Pack(kTagOp, msg));
  }
}

Task<> Monitor::HandleAck(AckMsg ack) {
  auto it = ops_.find(ack.op_id);
  if (it == ops_.end()) {
    co_return;  // stale ack (op already aborted/completed/timed out)
  }
  hw::Machine& m = sys_.machine();
  if (!it->second.raw) {
    co_await m.Compute(core_, m.cost().msg_demux);
    // The initiator's phase timeout may have erased the op while the demux
    // charge was in flight; the iterator would dangle.
    it = ops_.find(ack.op_id);
    if (it == ops_.end()) {
      co_return;
    }
  }
  OpState& st = it->second;
  st.vote = st.vote && ack.vote != 0;
  st.retryable = st.retryable || ack.retryable != 0;
  if (--st.pending > 0) {
    co_return;
  }
  if (st.done != nullptr) {
    st.done->Signal();  // initiator: RunCollective reads the final vote
    co_return;
  }
  int parent = st.parent;
  bool vote = st.vote;
  bool retryable = st.retryable;
  bool raw = st.raw;
  ops_.erase(it);
  co_await SendAck(parent, ack.op_id, vote, retryable, raw);
}

Task<> Monitor::Dispatch(const urpc::Message& msg, int from) {
  if (msg.tag == kTagOp) {
    co_await HandleOp(urpc::Unpack<OpMsg>(msg), from);
  } else if (msg.tag == kTagAck) {
    co_await HandleAck(urpc::Unpack<AckMsg>(msg));
  }
}

Task<> Monitor::Loop() {
  hw::Machine& m = sys_.machine();
  while (sys_.running()) {
    if (fault::Injector* inj = fault::Injector::active();
        inj != nullptr && inj->CoreHalted(core_, m.exec().now())) {
      // Fail-stop: the core executes nothing from its halt time on. The
      // coroutine itself parks (frames cannot be destroyed mid-flight);
      // data-hook signals may wake it, and it immediately parks again.
      if (!halt_traced_) {
        halt_traced_ = true;
        trace::Emit<trace::Category::kFault>(trace::EventId::kFaultCoreHalt,
                                             m.exec().now(), core_,
                                             static_cast<std::uint64_t>(core_));
      }
      co_await work_.Wait();
      continue;
    }
    if (!sys_.IsOnline(core_)) {
      // The core is powered down (MONITOR/MWAIT): park until a view change.
      co_await work_.Wait();
      continue;
    }
    bool any = false;
    auto in_it = sys_.in_channels_.find(core_);
    if (in_it != sys_.in_channels_.end()) {
      auto& vec = in_it->second;
      for (std::size_t i = 0; i < vec.size(); ++i) {
        urpc::Channel* ch = vec[i].second;
        int from = vec[i].first;
        urpc::Message msg;
        while (ch->HasMessage()) {
          (void)co_await ch->TryRecv(&msg);
          co_await Dispatch(msg, from);
          any = true;
        }
      }
    }
    // Broadcast groups: a published line invalidates our copy; re-fetch it
    // (this read serializes at the publisher's package) and handle the op.
    std::vector<int> sources;
    for (const auto& [src, grp] : sys_.bcast_) {
      if (src != core_ && grp.seq > bcast_seen_[src]) {
        sources.push_back(src);
      }
    }
    for (int src : sources) {
      auto& grp = sys_.bcast_[src];
      OpMsg op = grp.current;
      int limit = op.ncores == 0 ? m.num_cores() : op.ncores;
      bcast_seen_[src] = grp.seq;
      if (core_ >= limit) {
        continue;
      }
      co_await m.mem().Read(core_, grp.line);
      co_await HandleOp(op, src);
      any = true;
    }
    if (!any) {
      co_await work_.Wait();
    }
  }
}

Task<Monitor::CollectiveResult> Monitor::RunCollective(OpMsg msg) {
  hw::Machine& m = sys_.machine();
  const Cycles t0 = m.exec().now();
  int limit = msg.ncores == 0 ? m.num_cores() : msg.ncores;
  sim::Event done(m.exec());

  // The initiator applies the operation to its own replica first.
  ApplyResult local = co_await ApplyAction(msg);
  bool local_vote = local.vote;

  // Originate the shootdown-wave flows: one arrow from the initiator to each
  // replica that will invalidate (the kFlowIn ends land in ApplyAction).
  if (msg.kind == OpKind::kInvalidate && !msg.skip_tlb() &&
      trace::Enabled<trace::Category::kTlb>()) {
    for (int c = 0; c < limit; ++c) {
      if (c != core_ && sys_.IsOnline(c)) {
        trace::Emit<trace::Category::kTlb>(trace::EventId::kTlbShootdown, m.exec().now(),
                                           core_, msg.vaddr,
                                           static_cast<std::uint64_t>(c),
                                           ShootdownFlow(msg.op_id, c),
                                           trace::Phase::kFlowOut);
      }
    }
  }

  // Build the send plan: (destination, channel NUMA node).
  std::vector<std::pair<int, int>> sends;
  if (msg.proto == Protocol::kUnicast || msg.proto == Protocol::kBroadcast) {
    for (int c = 0; c < limit; ++c) {
      if (c != core_ && sys_.IsOnline(c)) {
        sends.emplace_back(c, -1);
      }
    }
  } else {
    const bool numa = msg.proto == Protocol::kNumaMulticast;
    const skb::MulticastRoute route = sys_.EffectiveRoute(core_, numa);
    for (const auto& node : route.nodes) {
      if (node.leader == core_) {
        for (int member : node.members) {
          if (member < limit) {
            sends.emplace_back(member, -1);
          }
        }
      } else if (node.leader < limit) {
        sends.emplace_back(node.leader, numa ? node.package : -1);
      }
    }
  }

  if (sends.empty()) {
    trace::EmitSpan<trace::Category::kMonitor>(trace::EventId::kMonCollective, t0,
                                               m.exec().now(), core_, msg.op_id);
    co_return CollectiveResult{m.exec().now() - t0, local_vote, local.retryable, false};
  }

  OpState st;
  st.pending = static_cast<int>(sends.size());
  st.vote = local_vote;
  st.retryable = local.retryable;
  st.raw = msg.raw();
  st.done = &done;
  ops_[msg.op_id] = st;

  if (msg.proto == Protocol::kBroadcast) {
    auto& grp = sys_.GetBroadcastGroup(core_);
    ++grp.seq;
    grp.current = msg;
    co_await m.mem().Write(core_, grp.line);
    // Slaves polling the line see the invalidation; wake their loops.
    for (int c = 0; c < limit; ++c) {
      if (c != core_ && sys_.IsOnline(c)) {
        sys_.on(c).work_.Signal();
      }
    }
  } else {
    for (auto [dest, node] : sends) {
      co_await sys_.GetChannel(core_, dest, node).Send(urpc::Pack(kTagOp, msg));
    }
  }

  // Plain runs wait unboundedly — WaitTimeout schedules a timer event even
  // when signaled first, so arming it unconditionally would perturb the
  // no-fault schedule. Under an installed Injector, a phase that outlives
  // the timeout means some participant will never answer: presume abort,
  // detect the dead core(s), and exclude them from subsequent rounds.
  bool timed_out = false;
  if (fault::Injector::active() != nullptr) {
    timed_out = !co_await done.WaitTimeout(recover::Config().phase_timeout);
  } else {
    co_await done.Wait();
  }
  CollectiveResult result;
  result.latency = m.exec().now() - t0;
  if (timed_out) {
    trace::Emit<trace::Category::kFault>(trace::EventId::kFault2pcTimeout,
                                         m.exec().now(), core_, msg.op_id);
    sys_.ExcludeHaltedCores();
    result.all_yes = false;
    result.retryable = true;  // survivors may well agree once the dead are excluded
    result.timed_out = true;
  } else {
    result.all_yes = ops_[msg.op_id].vote;
    result.retryable = ops_[msg.op_id].retryable;
  }
  ops_.erase(msg.op_id);
  trace::EmitSpan<trace::Category::kMonitor>(trace::EventId::kMonCollective, t0,
                                             m.exec().now(), core_, msg.op_id);
  co_return result;
}

Task<Monitor::CollectiveResult> Monitor::GlobalInvalidate(std::uint64_t vaddr,
                                                          std::uint32_t pages, Protocol proto,
                                                          OpFlags flags,
                                                          std::uint16_t ncores) {
  OpMsg msg;
  msg.op_id = (static_cast<std::uint64_t>(core_) << 48) | next_op_++;
  msg.kind = OpKind::kInvalidate;
  msg.proto = proto;
  msg.source = static_cast<std::uint16_t>(core_);
  msg.ncores = ncores;
  msg.vaddr = vaddr;
  msg.pages = pages;
  msg.set_raw(flags.raw);
  msg.set_skip_tlb(flags.skip_tlb);
  co_return co_await RunCollective(msg);
}

Task<Monitor::TwoPcResult> Monitor::GlobalRetype(caps::CapId target, caps::CapType new_type,
                                                 std::uint64_t child_bytes,
                                                 std::uint32_t count, Protocol proto,
                                                 OpFlags flags, std::uint16_t ncores) {
  OpMsg msg;
  msg.op_id = (static_cast<std::uint64_t>(core_) << 48) | next_op_++;
  msg.kind = OpKind::kPrepare;
  msg.proto = proto;
  msg.source = static_cast<std::uint16_t>(core_);
  msg.ncores = ncores;
  msg.cap_target = target;
  msg.cap_new_type = static_cast<std::uint8_t>(new_type);
  msg.cap_is_revoke = 0;
  msg.cap_child_bytes = child_bytes;
  msg.cap_count = count;
  msg.set_raw(flags.raw);
  co_return co_await TwoPhase(msg);
}

Task<Monitor::TwoPcResult> Monitor::GlobalRevoke(caps::CapId target, Protocol proto,
                                                 OpFlags flags) {
  OpMsg msg;
  msg.op_id = (static_cast<std::uint64_t>(core_) << 48) | next_op_++;
  msg.kind = OpKind::kPrepare;
  msg.proto = proto;
  msg.source = static_cast<std::uint16_t>(core_);
  msg.cap_target = target;
  msg.cap_is_revoke = 1;
  msg.set_raw(flags.raw);
  co_return co_await TwoPhase(msg);
}

Task<Monitor::TwoPcResult> Monitor::TwoPhase(OpMsg msg) {
  hw::Machine& m = sys_.machine();
  const Cycles t0 = m.exec().now();
  TwoPcResult result;
  // Conflicting prepares can all abort (each holds its own replica lock and
  // refuses the others); retry with a per-core deterministic backoff so one
  // initiator eventually wins. A *permanent* validation failure (bad cap,
  // live descendants, ...) aborts immediately — retrying cannot change the
  // vote — and is reported distinctly from exhausting the conflict retries.
  // A phase timeout (dead participant, fault injection) counts as retryable:
  // the timed-out round excluded the dead cores, so the next attempt can
  // commit among the survivors.
  const int max_attempts = recover::Config().max_attempts;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++result.attempts;
    msg.kind = OpKind::kPrepare;
    const Cycles prep_start = m.exec().now();
    CollectiveResult prepare = co_await RunCollective(msg);
    trace::EmitSpan<trace::Category::kMonitor>(trace::EventId::kMon2pcPrepare, prep_start,
                                               m.exec().now(), core_, msg.op_id);
    msg.kind = prepare.all_yes ? OpKind::kCommit : OpKind::kAbort;
    const Cycles phase2_start = m.exec().now();
    (void)co_await RunCollective(msg);
    trace::EmitSpan<trace::Category::kMonitor>(prepare.all_yes
                                                   ? trace::EventId::kMon2pcCommit
                                                   : trace::EventId::kMon2pcAbort,
                                               phase2_start, m.exec().now(), core_,
                                               msg.op_id);
    if (prepare.all_yes) {
      result.committed = true;
      result.outcome = TwoPcOutcome::kCommitted;
      break;
    }
    if (!prepare.retryable) {
      result.outcome = TwoPcOutcome::kAborted;
      break;
    }
    result.outcome = TwoPcOutcome::kRetriesExhausted;
    // The backoff must exceed a full two-phase round so phase-locked
    // initiators separate; the per-core factor breaks symmetry.
    Cycles backoff =
        (Cycles{4000} << attempt) * (1 + static_cast<Cycles>(core_) % 5) +
        static_cast<Cycles>(core_) * 977;
    result.backoff += backoff;
    co_await m.exec().Delay(backoff);
    // A fresh op id per attempt: the old prepares were aborted everywhere.
    msg.op_id = (static_cast<std::uint64_t>(core_) << 48) | next_op_++;
  }
  result.latency = m.exec().now() - t0;
  co_return result;
}

Task<caps::CapErr> Monitor::SendCap(int dest_core, caps::CapId id) {
  const caps::Capability* cap = caps_.Get(id);
  if (cap == nullptr) {
    co_return caps::CapErr::kBadCap;
  }
  if (!caps::TransferableType(cap->type)) {
    co_return caps::CapErr::kBadType;
  }
  if (caps_.IsLocked(id)) {
    co_return caps::CapErr::kLocked;  // pending revocation/retype
  }
  if (!cap->rights.grant) {
    co_return caps::CapErr::kNoRights;
  }
  OpMsg msg;
  msg.op_id = (static_cast<std::uint64_t>(core_) << 48) | next_op_++;
  msg.kind = OpKind::kCapSend;
  msg.proto = Protocol::kUnicast;
  msg.source = static_cast<std::uint16_t>(core_);
  msg.vaddr = cap->base;
  msg.cap_child_bytes = cap->bytes;
  msg.cap_new_type = static_cast<std::uint8_t>(cap->type);

  sim::Event done(sys_.machine().exec());
  OpState st;
  st.pending = 1;
  st.done = &done;
  ops_[msg.op_id] = st;
  co_await sys_.GetChannel(core_, dest_core, -1).Send(urpc::Pack(kTagOp, msg));
  if (fault::Injector::active() != nullptr) {
    // The destination may be dead; bound the wait and report it distinctly.
    if (!co_await done.WaitTimeout(recover::Config().phase_timeout)) {
      ops_.erase(msg.op_id);
      sys_.ExcludeHaltedCores();
      co_return caps::CapErr::kTimeout;
    }
  } else {
    co_await done.Wait();
  }
  bool ok = ops_[msg.op_id].vote;
  ops_.erase(msg.op_id);
  co_return ok ? caps::CapErr::kOk : caps::CapErr::kBadType;
}

MonitorSystem::MonitorSystem(hw::Machine& machine, skb::Skb& skb,
                             std::vector<std::unique_ptr<kernel::CpuDriver>>& drivers)
    : machine_(machine), skb_(skb), drivers_(drivers),
      online_(static_cast<std::size_t>(machine.num_cores()), true),
      failed_(static_cast<std::size_t>(machine.num_cores()), false) {
  for (int c = 0; c < machine.num_cores(); ++c) {
    monitors_.push_back(std::make_unique<Monitor>(*this, c));
  }
}

MonitorSystem::~MonitorSystem() { Shutdown(); }

void MonitorSystem::Boot() {
  running_ = true;
  for (auto& mon : monitors_) {
    machine_.exec().Spawn(mon->Loop());
  }
  // The heartbeat exists only under fault injection: it schedules periodic
  // timer events, which would perturb (and needlessly extend) plain runs.
  if (fault::Injector::active() != nullptr) {
    machine_.exec().Spawn(HeartbeatLoop());
  }
}

Task<> MonitorSystem::HeartbeatLoop() {
  while (running_) {
    co_await machine_.exec().Delay(recover::Config().heartbeat_period);
    if (!running_) {
      break;
    }
    ExcludeHaltedCores();
  }
}

int MonitorSystem::ExcludeHaltedCores() {
  fault::Injector* inj = fault::Injector::active();
  if (inj == nullptr) {
    return 0;
  }
  int excluded = 0;
  for (int c = 0; c < machine_.num_cores(); ++c) {
    if (online_[static_cast<std::size_t>(c)] && inj->CoreHalted(c, machine_.exec().now())) {
      online_[static_cast<std::size_t>(c)] = false;
      failed_[static_cast<std::size_t>(c)] = true;
      trace::Emit<trace::Category::kFault>(trace::EventId::kFaultExcludeCore,
                                           machine_.exec().now(), c,
                                           static_cast<std::uint64_t>(c));
      on(c).work_.Signal();  // its loop observes the halt and parks
      if (exclusion_hook_) {
        exclusion_hook_(c);
      }
      ++excluded;
    }
  }
  return excluded;
}

void MonitorSystem::Shutdown() {
  if (!running_) {
    return;
  }
  running_ = false;
  for (auto& mon : monitors_) {
    mon->work_.Signal();
  }
}

caps::CapId MonitorSystem::InstallRootCap(std::uint64_t base, std::uint64_t bytes) {
  caps::CapId id = caps::kNoCap;
  for (auto& mon : monitors_) {
    id = mon->caps().InstallRoot(base, bytes);
  }
  return id;
}

bool MonitorSystem::ReplicasConsistent() const {
  std::uint64_t digest = monitors_.front()->caps_.Digest();
  for (const auto& mon : monitors_) {
    if (mon->caps_.Digest() != digest) {
      return false;
    }
  }
  return true;
}

bool MonitorSystem::LiveReplicasConsistent() const {
  std::uint64_t digest = 0;
  bool have_digest = false;
  for (const auto& mon : monitors_) {
    if (!online_[static_cast<std::size_t>(mon->core())]) {
      continue;
    }
    std::uint64_t d = mon->caps_.Digest();
    if (!have_digest) {
      digest = d;
      have_digest = true;
    } else if (d != digest) {
      return false;
    }
  }
  return true;
}

const skb::MulticastRoute& MonitorSystem::RouteFor(int source, bool numa_aware) {
  auto key = std::make_pair(source, numa_aware);
  auto it = routes_.find(key);
  if (it == routes_.end()) {
    it = routes_.emplace(key, skb_.BuildMulticastRoute(source, numa_aware)).first;
  }
  return it->second;
}

urpc::Channel& MonitorSystem::GetChannel(int from, int to, int numa_node) {
  auto key = std::make_tuple(from, to, numa_node);
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    urpc::ChannelOptions opts;
    opts.slots = 8;
    opts.prefetch = true;  // monitors poll channel arrays (section 4.6)
    opts.numa_node = numa_node;
    auto ch = std::make_unique<urpc::Channel>(machine_, from, to, opts);
    Monitor* receiver = monitors_[static_cast<std::size_t>(to)].get();
    ch->SetDataHook([receiver] { receiver->work_.Signal(); });
    in_channels_[to].emplace_back(from, ch.get());
    it = channels_.emplace(key, std::move(ch)).first;
  }
  return *it->second;
}

int MonitorSystem::OnlineCount() const {
  int n = 0;
  for (bool b : online_) {
    n += b ? 1 : 0;
  }
  return n;
}

skb::MulticastRoute MonitorSystem::EffectiveRoute(int source, bool numa_aware) {
  skb::MulticastRoute route = RouteFor(source, numa_aware);
  skb::MulticastRoute out;
  out.source = route.source;
  for (auto& node : route.nodes) {
    skb::MulticastRoute::Node n;
    n.package = node.package;
    n.est_latency = node.est_latency;
    std::vector<int> live;
    if (IsOnline(node.leader)) {
      live.push_back(node.leader);
    }
    for (int m : node.members) {
      if (IsOnline(m)) {
        live.push_back(m);
      }
    }
    if (live.empty()) {
      continue;  // whole package powered down
    }
    // The source stays its own package's aggregation point.
    if (node.leader == source) {
      n.leader = source;
      for (int m : live) {
        if (m != source) {
          n.members.push_back(m);
        }
      }
    } else {
      n.leader = live.front();
      n.members.assign(live.begin() + 1, live.end());
    }
    out.nodes.push_back(std::move(n));
  }
  return out;
}

Task<bool> MonitorSystem::OfflineCore(int initiator, int core) {
  if (core == initiator || !IsOnline(core)) {
    co_return false;
  }
  // View-change agreement: every live monitor (including the victim, which
  // must quiesce) acknowledges the new view before it takes effect.
  OpMsg msg;
  msg.kind = OpKind::kPing;
  msg.proto = Protocol::kNumaMulticast;
  msg.source = static_cast<std::uint16_t>(initiator);
  (void)co_await on(initiator).RunCollectiveForTest(msg);
  online_[static_cast<std::size_t>(core)] = false;
  on(core).work_.Signal();  // let its loop observe the view and park
  co_return true;
}

Task<bool> MonitorSystem::OnlineCore(int initiator, int core) {
  if (IsOnline(core)) {
    co_return false;
  }
  // Replica catch-up: the initiator streams its capability database to the
  // returning core (posted writes, read back on the target).
  const caps::CapDb& source_db = on(initiator).caps();
  std::uint64_t bytes = (source_db.LiveCount() + 1) * 64;
  sim::Addr buf = machine_.mem().AllocLines(
      machine_.topo().PackageOf(core), sim::LinesCovering(0, bytes));
  co_await machine_.mem().WritePosted(initiator, buf, bytes);
  co_await machine_.mem().Read(core, buf, bytes);
  on(core).caps_ = source_db;  // the transferred replica
  online_[static_cast<std::size_t>(core)] = true;
  on(core).work_.Signal();
  // Announce the view change.
  OpMsg msg;
  msg.kind = OpKind::kPing;
  msg.proto = Protocol::kNumaMulticast;
  msg.source = static_cast<std::uint16_t>(initiator);
  (void)co_await on(initiator).RunCollectiveForTest(msg);
  co_return true;
}

MonitorSystem::BroadcastGroup& MonitorSystem::GetBroadcastGroup(int source) {
  auto it = bcast_.find(source);
  if (it == bcast_.end()) {
    BroadcastGroup grp;
    grp.line = machine_.mem().AllocLines(machine_.topo().PackageOf(source), 1);
    it = bcast_.emplace(source, grp).first;
  }
  return it->second;
}

}  // namespace mk::monitor
