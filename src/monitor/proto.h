// Inter-monitor protocol messages and routing protocol selection.
#ifndef MK_MONITOR_PROTO_H_
#define MK_MONITOR_PROTO_H_

#include <cstdint>

namespace mk::monitor {

// Routing disciplines evaluated in section 5.1 (Figure 6).
enum class Protocol : std::uint8_t {
  kBroadcast,      // one shared cache line read by every slave
  kUnicast,        // individual point-to-point channels
  kMulticast,      // two-level tree: one aggregation core per package
  kNumaMulticast,  // multicast + NUMA-local buffers + farthest-first ordering
};

const char* ProtocolName(Protocol p);

enum class OpKind : std::uint8_t {
  kInvalidate,  // one-phase commit: TLB shootdown / unmap propagation
  kPrepare,     // two-phase commit round 1 (capability retype/revoke)
  kCommit,      // two-phase commit round 2 (apply)
  kAbort,       // two-phase commit round 2 (cancel)
  kCapSend,     // cross-core capability transfer
  kPing,        // liveness/measurement
  kCustom,      // service-defined replicated operation (e.g. the FS)
};

struct OpFlags {
  bool raw = false;       // skip monitor demux charges (raw messaging bench)
  bool skip_tlb = false;  // measure protocol only, without TLB invalidation
};

// The wire format of an inter-monitor operation; fits one URPC payload.
struct OpMsg {
  std::uint64_t op_id = 0;
  OpKind kind = OpKind::kPing;
  Protocol proto = Protocol::kUnicast;
  std::uint8_t flags = 0;  // bit 0: raw, bit 1: skip_tlb
  std::uint16_t source = 0;
  std::uint16_t ncores = 0;  // cores participating: 0..ncores-1 (0 = all)

  // kInvalidate: virtual range.
  std::uint64_t vaddr = 0;
  std::uint32_t pages = 0;

  // kPrepare/kCommit/kAbort: capability operation.
  std::uint32_t cap_target = 0;
  std::uint8_t cap_new_type = 0;
  std::uint8_t cap_is_revoke = 0;
  std::uint32_t cap_count = 0;
  std::uint64_t cap_child_bytes = 0;

  bool raw() const { return (flags & 1) != 0; }
  bool skip_tlb() const { return (flags & 2) != 0; }
  void set_raw(bool v) { flags = static_cast<std::uint8_t>(v ? (flags | 1) : (flags & ~1)); }
  void set_skip_tlb(bool v) {
    flags = static_cast<std::uint8_t>(v ? (flags | 2) : (flags & ~2));
  }
};
static_assert(sizeof(OpMsg) <= 56, "OpMsg must fit one URPC payload");

struct AckMsg {
  std::uint64_t op_id = 0;
  std::uint8_t vote = 1;       // 1 = yes/ok
  std::uint8_t retryable = 0;  // no-vote was kConflict: retry may succeed
};

// Message tags on monitor channels.
inline constexpr std::uint64_t kTagOp = 1;
inline constexpr std::uint64_t kTagAck = 2;

}  // namespace mk::monitor

#endif  // MK_MONITOR_PROTO_H_
