#include "fs/wal.h"

#include <cstring>

namespace mk::fs {

namespace {
void PutU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}
}  // namespace

void EncodeWalRecord(const WalRecord& rec, std::vector<std::uint8_t>* out) {
  PutU64(out, rec.lsn);
  PutU64(out, rec.term);
  PutU32(out, static_cast<std::uint32_t>(rec.payload.size()));
  out->insert(out->end(), rec.payload.begin(), rec.payload.end());
}

bool DecodeWalLog(const std::vector<std::uint8_t>& bytes, std::vector<WalRecord>* out) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    if (bytes.size() - off < 20) {
      return false;  // torn header
    }
    WalRecord rec;
    rec.lsn = GetU64(bytes.data() + off);
    rec.term = GetU64(bytes.data() + off + 8);
    std::uint32_t len = GetU32(bytes.data() + off + 16);
    off += 20;
    if (bytes.size() - off < len) {
      return false;  // torn payload
    }
    rec.payload.assign(reinterpret_cast<const char*>(bytes.data() + off), len);
    off += len;
    out->push_back(std::move(rec));
  }
  return true;
}

std::string Wal::PickPath(const ReplicatedFs& fs, const std::string& stem,
                          int sequencer) {
  for (int nonce = 0;; ++nonce) {
    std::string path = stem + "-" + std::to_string(nonce);
    if (fs.SequencerOf(path) == sequencer) {
      return path;
    }
  }
}

Task<FsErr> Wal::Open(int core) {
  FsErr err = co_await fs_.Create(core, path_);
  co_return err == FsErr::kExists ? FsErr::kOk : err;
}

Task<FsErr> Wal::Append(int core, const WalRecord& rec) {
  std::vector<std::uint8_t> frame;
  EncodeWalRecord(rec, &frame);
  co_return co_await fs_.Append(core, path_, std::move(frame));
}

Task<std::vector<WalRecord>> Wal::ReadAll(int core) const {
  std::vector<WalRecord> out;
  auto bytes = co_await fs_.Read(core, path_);
  if (bytes.has_value()) {
    DecodeWalLog(*bytes, &out);
  }
  co_return out;
}

Task<std::int64_t> Wal::TruncateAfter(int core, std::uint64_t keep_lsn) {
  std::vector<WalRecord> records = co_await ReadAll(core);
  std::vector<std::uint8_t> retained;
  std::int64_t discarded = 0;
  for (const WalRecord& rec : records) {
    if (rec.lsn <= keep_lsn) {
      EncodeWalRecord(rec, &retained);
    } else {
      ++discarded;
    }
  }
  // Always rewrite, even when nothing was discarded: the read above is
  // replica-local (no sequencer slot), so a deposed leader's in-flight append
  // can sequence after it. The Write serializes behind any such append on the
  // sequencer slot and clobbers the orphan — skipping it would leave a record
  // whose lsn the new leader is about to reassign.
  FsErr err = co_await fs_.Write(core, path_, std::move(retained));
  co_return err == FsErr::kOk ? discarded : -1;
}

}  // namespace mk::fs
