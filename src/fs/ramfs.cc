#include "fs/ramfs.h"

namespace mk::fs {

const char* FsErrName(FsErr e) {
  switch (e) {
    case FsErr::kOk: return "ok";
    case FsErr::kExists: return "exists";
    case FsErr::kNotFound: return "not-found";
    case FsErr::kBadPath: return "bad-path";
    case FsErr::kUnavailable: return "unavailable";
  }
  return "?";
}

ReplicatedFs::ReplicatedFs(monitor::MonitorSystem& sys)
    : sys_(sys), replicas_(static_cast<std::size_t>(sys.num_cores())) {
  transfer_region_ = sys_.machine().mem().AllocLines(0, 64);
  for (int c = 0; c < sys_.num_cores(); ++c) {
    seq_slots_.push_back(std::make_unique<sim::Semaphore>(sys_.machine().exec(), 1));
  }
  for (int c = 0; c < sys_.num_cores(); ++c) {
    // Each monitor applies replicated FS ops to its core's replica. The
    // handler reads the (already charged) payload descriptor and mutates the
    // local replica; its vote is always yes (one-phase commit).
    sys_.on(c).SetCustomHandler([this, c](const monitor::OpMsg& msg) -> Task<bool> {
      auto it = pending_.find(msg.op_id);
      if (it == pending_.end()) {
        co_return true;  // not ours (another service's op)
      }
      FsErr err = Apply(&replicas_[static_cast<std::size_t>(c)], it->second);
      results_[msg.op_id] = err;  // all replicas agree deterministically
      co_return true;
    });
  }
}

ReplicatedFs::~ReplicatedFs() {
  for (int c = 0; c < sys_.num_cores(); ++c) {
    sys_.on(c).SetCustomHandler(nullptr);
  }
}

int ReplicatedFs::SequencerOf(const std::string& path) const {
  std::uint64_t h = 1469598103934665603ULL;
  for (char ch : path) {
    h = (h ^ static_cast<std::uint8_t>(ch)) * 1099511628211ULL;
  }
  return static_cast<int>(h % static_cast<std::uint64_t>(sys_.num_cores()));
}

FsErr ReplicatedFs::Apply(Replica* replica, const PendingOp& op) {
  // Redelivery check: a collective that timed out (a replica halted
  // mid-flight) is retried under a fresh op_id with the same per-path seq.
  // A replica that already applied this seq must not apply it again — an
  // append would duplicate bytes, a remove would flip kOk to kNotFound. It
  // returns the recorded result instead, so every replica still reports the
  // same deterministic outcome.
  if (op.seq != 0) {
    auto mark = replica->applied.find(op.path);
    if (mark != replica->applied.end() && mark->second.seq >= op.seq) {
      return mark->second.result;
    }
  }
  FsErr err = ApplyToFiles(replica, op);
  if (op.seq != 0) {
    replica->applied[op.path] = AppliedMark{op.seq, err};
  }
  return err;
}

FsErr ReplicatedFs::ApplyToFiles(Replica* replica, const PendingOp& op) {
  switch (op.code) {
    case OpCode::kCreate:
      if (replica->files.count(op.path) != 0) {
        return FsErr::kExists;
      }
      replica->files[op.path] = {};
      return FsErr::kOk;
    case OpCode::kWrite: {
      auto it = replica->files.find(op.path);
      if (it == replica->files.end()) {
        return FsErr::kNotFound;
      }
      it->second = op.data;
      return FsErr::kOk;
    }
    case OpCode::kAppend: {
      auto it = replica->files.find(op.path);
      if (it == replica->files.end()) {
        return FsErr::kNotFound;
      }
      it->second.insert(it->second.end(), op.data.begin(), op.data.end());
      return FsErr::kOk;
    }
    case OpCode::kRemove:
      return replica->files.erase(op.path) > 0 ? FsErr::kOk : FsErr::kNotFound;
  }
  return FsErr::kBadPath;
}

Task<FsErr> ReplicatedFs::Mutate(int core, OpCode code, std::string path,
                                 std::vector<std::uint8_t> data) {
  if (path.empty() || path.front() != '/') {
    co_return FsErr::kBadPath;
  }
  hw::Machine& m = sys_.machine();
  const int sequencer = SequencerOf(path);
  // Ship the request (path + data) to the sequencer core: a charged transfer
  // through shared memory, like any bulk URPC payload.
  std::uint64_t bytes = path.size() + data.size() + 16;
  if (core != sequencer) {
    co_await m.mem().WritePosted(core, transfer_region_, bytes);
    co_await m.mem().Read(sequencer, transfer_region_, bytes);
    co_await m.Compute(sequencer, m.cost().msg_demux);
  }
  // The sequencer orders the op and drives the one-phase collective; every
  // monitor's custom handler applies it to its replica. One collective at a
  // time per sequencer: that serialization is the ordering guarantee.
  co_await seq_slots_[static_cast<std::size_t>(sequencer)]->Acquire();
  // The seq is assigned under the slot, so seq order == collective order.
  PendingOp op;
  op.code = code;
  op.path = std::move(path);
  op.data = std::move(data);
  op.seq = ++path_seq_[op.path];
  // A collective can time out when a participant halts mid-flight: some
  // replicas applied the op, others never saw it. RunCollective has already
  // excluded the halted cores from the view, so redelivering the same op
  // (fresh op_id, same seq) converges the survivors — replicas that applied
  // it skip the duplicate via the seq mark. Without the retry, the old code
  // read results_[op_id] through operator[] and a failed collective silently
  // reported default-constructed FsErr::kOk.
  FsErr err = FsErr::kUnavailable;
  bool delivered = false;
  constexpr int kMaxDeliveryAttempts = 3;
  for (int attempt = 0; attempt < kMaxDeliveryAttempts && !delivered; ++attempt) {
    monitor::OpMsg msg;
    msg.op_id = sys_.on(sequencer).NewOpId();
    msg.kind = monitor::OpKind::kCustom;
    msg.proto = monitor::Protocol::kNumaMulticast;
    msg.source = static_cast<std::uint16_t>(sequencer);
    pending_[msg.op_id] = op;
    auto res = co_await sys_.on(sequencer).RunCollectiveForTest(msg);
    auto rit = results_.find(msg.op_id);
    if (res.all_yes && rit != results_.end()) {
      err = rit->second;
      delivered = true;  // every online replica applied it
    }
    if (rit != results_.end()) {
      results_.erase(rit);
    }
    pending_.erase(msg.op_id);
    if (!delivered) {
      if (!res.retryable) {
        break;  // aborted for good; kUnavailable surfaces to the caller
      }
      ++redeliveries_;
    }
  }
  ++mutations_;
  seq_slots_[static_cast<std::size_t>(sequencer)]->Release();
  // Completion notification back to the caller.
  if (core != sequencer) {
    co_await m.mem().WritePosted(sequencer, transfer_region_ + 64, 8);
    co_await m.mem().Read(core, transfer_region_ + 64, 8);
  }
  co_return err;
}

Task<FsErr> ReplicatedFs::Create(int core, const std::string& path) {
  co_return co_await Mutate(core, OpCode::kCreate, path, {});
}

Task<FsErr> ReplicatedFs::Write(int core, const std::string& path,
                                std::vector<std::uint8_t> data) {
  co_return co_await Mutate(core, OpCode::kWrite, path, std::move(data));
}

Task<FsErr> ReplicatedFs::Append(int core, const std::string& path,
                                 std::vector<std::uint8_t> data) {
  co_return co_await Mutate(core, OpCode::kAppend, path, std::move(data));
}

Task<FsErr> ReplicatedFs::Remove(int core, const std::string& path) {
  co_return co_await Mutate(core, OpCode::kRemove, path, {});
}

Task<std::optional<std::vector<std::uint8_t>>> ReplicatedFs::Read(int core,
                                                                  const std::string& path) {
  hw::Machine& m = sys_.machine();
  const Replica& replica = replicas_[static_cast<std::size_t>(core)];
  auto it = replica.files.find(path);
  if (it == replica.files.end()) {
    co_await m.Compute(core, m.cost().l1_hit * 8);
    co_return std::nullopt;
  }
  // Replica-local read: the whole point of replication (section 3.3) — data
  // is near the core that processes it.
  co_await m.Compute(core, m.cost().l1_hit * (8 + it->second.size() / 64));
  co_return it->second;
}

Task<std::vector<std::string>> ReplicatedFs::List(int core, const std::string& prefix) {
  hw::Machine& m = sys_.machine();
  const Replica& replica = replicas_[static_cast<std::size_t>(core)];
  std::vector<std::string> out;
  for (const auto& [path, data] : replica.files) {
    if (path.rfind(prefix, 0) == 0) {
      out.push_back(path);
    }
  }
  co_await m.Compute(core, m.cost().l1_hit * (4 + replica.files.size()));
  co_return out;
}

bool ReplicatedFs::Exists(const std::string& path) const {
  return replicas_.front().files.count(path) != 0;
}

std::uint64_t ReplicatedFs::ReplicaDigest(int core) const {
  const Replica& r = replicas_[static_cast<std::size_t>(core)];
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h = (h ^ p[i]) * 1099511628211ULL;
    }
  };
  for (const auto& [path, data] : r.files) {
    mix(path.data(), path.size());
    mix(data.data(), data.size());
  }
  // The applied-seq marks are replica state too: divergence there means a
  // future redelivery would be skipped on one replica and applied on another.
  for (const auto& [path, mark] : r.applied) {
    mix(path.data(), path.size());
    mix(&mark.seq, sizeof(mark.seq));
    std::uint8_t res = static_cast<std::uint8_t>(mark.result);
    mix(&res, sizeof(res));
  }
  return h;
}

Task<> ReplicatedFs::SyncReplica(int from_core, int to_core) {
  hw::Machine& m = sys_.machine();
  const Replica& src = replicas_[static_cast<std::size_t>(from_core)];
  std::uint64_t bytes = 64;
  for (const auto& [path, data] : src.files) {
    bytes += path.size() + data.size() + 16;
  }
  co_await m.mem().WritePosted(from_core, transfer_region_, std::min<std::uint64_t>(bytes, 4096));
  co_await m.mem().Read(to_core, transfer_region_, std::min<std::uint64_t>(bytes, 4096));
  co_await m.Compute(to_core, bytes / 8);
  replicas_[static_cast<std::size_t>(to_core)] = src;
}

bool ReplicatedFs::ReplicasConsistent() const {
  // Baseline from the first *online* replica: core 0 may itself be halted,
  // in which case its stale replica must not condemn the survivors.
  int base = -1;
  for (int c = 0; c < sys_.num_cores(); ++c) {
    if (sys_.IsOnline(c)) {
      base = c;
      break;
    }
  }
  if (base < 0) {
    return true;
  }
  std::uint64_t digest = ReplicaDigest(base);
  for (int c = base + 1; c < sys_.num_cores(); ++c) {
    if (sys_.IsOnline(c) && ReplicaDigest(c) != digest) {
      return false;
    }
  }
  return true;
}

}  // namespace mk::fs
