// Write-ahead log on the replicated file system.
//
// A Wal is one append-only file in fs::ReplicatedFs holding fixed-framed
// records [lsn | term | len | payload]. Appending is a replicated-fs mutation
// — a one-phase collective over every online core's replica — so a completed
// append means the record is durable on every live core, including each
// follower's. That is what lets the store's commit rule ("follower durability
// before ack") piggyback on the fs layer: the follower's ack confirms it
// *applied* the record; durability came with the append itself.
//
// Replay is a replica-local read (cheap, like all fs reads), which is how a
// respawned follower catches up from arbitrary lag: read the log on its own
// core, apply every record beyond its applied lsn, repeat until it has closed
// the gap to the leader.
//
// Truncation (promotion discarding an uncommitted suffix) rewrites the file
// with the retained prefix via a replicated Write — again a single collective,
// so all replicas truncate together.
#ifndef MK_FS_WAL_H_
#define MK_FS_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fs/ramfs.h"
#include "sim/task.h"

namespace mk::fs {

struct WalRecord {
  std::uint64_t lsn = 0;
  std::uint64_t term = 0;   // leadership epoch that wrote the record
  std::string payload;      // opaque to the log (the store ships SQL text)
};

// Frame: [u64 lsn][u64 term][u32 len][len bytes], little-endian host order
// (the log never leaves the simulated machine).
void EncodeWalRecord(const WalRecord& rec, std::vector<std::uint8_t>* out);
// Decodes every whole record in `bytes`. Returns false on a torn or corrupt
// frame (appends are atomic collectives, so this indicates a logic bug, not
// a crash artifact); records decoded before the bad frame are kept in `out`.
bool DecodeWalLog(const std::vector<std::uint8_t>& bytes, std::vector<WalRecord>* out);

class Wal {
 public:
  Wal(ReplicatedFs& fs, std::string path) : fs_(fs), path_(std::move(path)) {}

  // Picks "<stem>-<nonce>" whose mutation sequencer is `sequencer`, so a
  // shard's log keeps its ordering authority on a core the shard controls
  // (and its fault plans spare).
  static std::string PickPath(const ReplicatedFs& fs, const std::string& stem,
                              int sequencer);

  // Creates the log file (idempotent: an existing file is fine).
  Task<FsErr> Open(int core);
  // Appends one record; completion == durable on every online replica.
  Task<FsErr> Append(int core, const WalRecord& rec);
  // Replica-local replay: decodes the whole log as seen from `core`.
  Task<std::vector<WalRecord>> ReadAll(int core) const;
  // Discards every record with lsn > keep_lsn (the uncommitted suffix a new
  // leader drops at promotion). The rewrite always runs, even when nothing is
  // discarded: it serializes behind (and clobbers) a deposed leader's
  // in-flight append that sequenced after the replica-local read. Returns the
  // number of records discarded, or -1 if the replicated rewrite failed.
  Task<std::int64_t> TruncateAfter(int core, std::uint64_t keep_lsn);

  const std::string& path() const { return path_; }
  ReplicatedFs& fs() { return fs_; }

 private:
  ReplicatedFs& fs_;
  std::string path_;
};

}  // namespace mk::fs

#endif  // MK_FS_WAL_H_
