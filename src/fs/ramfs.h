// A replicated in-memory file system inside the computer (section 7: "it may
// be fruitful to ... construct a scalable, replicated file system inside the
// computer").
//
// Every core holds a full replica of the namespace and file contents, so
// reads are always replica-local (cheap). Mutations are ordered per file by
// a sequencer core (chosen by hashing the path) and propagated to all
// replicas with a one-phase-commit collective over the monitors' NUMA-aware
// multicast tree: the payload travels through a charged transfer buffer, the
// op descriptor rides the collective, and completion means every replica has
// applied the change.
#ifndef MK_FS_RAMFS_H_
#define MK_FS_RAMFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "monitor/monitor.h"
#include "sim/event.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::fs {

using sim::Cycles;
using sim::Task;

enum class FsErr {
  kOk = 0,
  kExists,
  kNotFound,
  kBadPath,
  kUnavailable,  // collective kept timing out; outcome unknown to the caller
};

const char* FsErrName(FsErr e);

class ReplicatedFs {
 public:
  explicit ReplicatedFs(monitor::MonitorSystem& sys);
  ReplicatedFs(const ReplicatedFs&) = delete;
  ReplicatedFs& operator=(const ReplicatedFs&) = delete;
  ~ReplicatedFs();

  // --- Mutations (sequenced per file, replicated to every core) ---
  Task<FsErr> Create(int core, const std::string& path);
  Task<FsErr> Write(int core, const std::string& path, std::vector<std::uint8_t> data);
  Task<FsErr> Append(int core, const std::string& path, std::vector<std::uint8_t> data);
  Task<FsErr> Remove(int core, const std::string& path);

  // --- Reads: served from the local replica ---
  Task<std::optional<std::vector<std::uint8_t>>> Read(int core, const std::string& path);
  Task<std::vector<std::string>> List(int core, const std::string& prefix);
  bool Exists(const std::string& path) const;

  // The sequencer core responsible for ordering a path's mutations.
  int SequencerOf(const std::string& path) const;

  // All replicas identical? (test invariant; offline cores excluded)
  bool ReplicasConsistent() const;

  // State transfer for a replica that missed updates (e.g. a core returning
  // from power-down): streams `from_core`'s replica to `to_core`, charged by
  // size. Call after MonitorSystem::OnlineCore.
  Task<> SyncReplica(int from_core, int to_core);

  std::uint64_t mutations() const { return mutations_; }
  // Collectives that timed out and were redelivered (fault runs only).
  std::uint64_t redeliveries() const { return redeliveries_; }

 private:
  enum class OpCode : std::uint8_t { kCreate, kWrite, kAppend, kRemove };
  struct PendingOp {
    OpCode code;
    std::string path;
    std::vector<std::uint8_t> data;
    // Per-path mutation sequence number, assigned under the sequencer slot.
    // Replicas use it to recognise a redelivered op: a collective that times
    // out (some replica halted mid-flight) is retried, and every replica that
    // already applied the op must skip the second delivery instead of
    // double-applying it.
    std::uint64_t seq = 0;
  };
  struct AppliedMark {
    std::uint64_t seq = 0;
    FsErr result = FsErr::kOk;
  };
  struct Replica {
    std::map<std::string, std::vector<std::uint8_t>> files;
    // path -> highest applied seq and its result; consulted on redelivery.
    std::map<std::string, AppliedMark> applied;
  };

  // Applies an op to one replica (host-side state change), skipping seqs the
  // replica has already applied (redelivery idempotence).
  static FsErr Apply(Replica* replica, const PendingOp& op);
  static FsErr ApplyToFiles(Replica* replica, const PendingOp& op);
  // Runs the op through the sequencer + collective; returns the local result.
  // (Scalar/string parameters rather than an aggregate: GCC 12 miscompiles
  // braced aggregate temporaries passed to coroutines.)
  Task<FsErr> Mutate(int core, OpCode code, std::string path,
                     std::vector<std::uint8_t> data);
  std::uint64_t ReplicaDigest(int core) const;

  monitor::MonitorSystem& sys_;
  std::vector<Replica> replicas_;
  // One slot per sequencer core: a sequencer runs one collective at a time,
  // which is what gives mutations on a file a single global order.
  std::vector<std::unique_ptr<sim::Semaphore>> seq_slots_;
  std::map<std::uint64_t, PendingOp> pending_;  // op_id -> payload (host side)
  std::map<std::uint64_t, FsErr> results_;      // eventual per-op outcome
  std::map<std::string, std::uint64_t> path_seq_;  // next seq per path
  sim::Addr transfer_region_;
  std::uint64_t mutations_ = 0;
  std::uint64_t redeliveries_ = 0;
};

}  // namespace mk::fs

#endif  // MK_FS_RAMFS_H_
