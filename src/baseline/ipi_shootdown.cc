#include "baseline/ipi_shootdown.h"

namespace mk::baseline {

IpiShootdown::IpiShootdown(hw::Machine& machine, Flavor flavor)
    : machine_(machine), flavor_(flavor), all_acked_(machine.exec()) {
  op_line_ = machine_.mem().AllocLines(0, 1);
  ack_line_ = machine_.mem().AllocLines(0, 1);
  for (int c = 0; c < machine_.num_cores(); ++c) {
    machine_.ipi().SetHandler(c, [this, c](int vector, std::uint64_t) {
      if (vector == kVectorShootdown) {
        machine_.exec().Spawn(Target(c, generation_));
      }
    });
  }
}

Cycles IpiShootdown::SerialSendCost() const {
  // ICR write plus polling the APIC delivery-status bit before the next send;
  // Windows adds per-target bookkeeping on this path.
  return flavor_ == Flavor::kLinux ? 600 : 1200;
}

Cycles IpiShootdown::EntryCost() const {
  // Syscall + VM-structure locking before IPIs go out. The Windows dispatcher
  // path is heavier.
  return flavor_ == Flavor::kLinux ? 1200 : 3500;
}

Task<> IpiShootdown::Target(int core, std::uint64_t generation) {
  if (generation != generation_) {
    co_return;  // stale interrupt from a previous round
  }
  // Trap entry, read the operation descriptor (a miss: the initiator just
  // wrote it), invalidate, acknowledge on the shared counter (every target
  // write contends for that line), and resume.
  co_await machine_.Trap(core);
  co_await machine_.mem().Read(core, op_line_);
  for (std::uint32_t i = 0; i < pages_; ++i) {
    co_await machine_.tlb(core).Invalidate(vaddr_ + i * hw::kPageSize);
  }
  co_await machine_.mem().Write(core, ack_line_);
  ++acks_received_;
  if (acks_received_ >= acks_needed_) {
    all_acked_.Signal();
  }
}

Task<Cycles> IpiShootdown::ChangeMapping(int initiator, int cores, std::uint64_t vaddr,
                                         std::uint32_t pages) {
  const Cycles t0 = machine_.exec().now();
  ++generation_;
  vaddr_ = vaddr;
  pages_ = pages;
  acks_needed_ = cores - 1;
  acks_received_ = 0;

  co_await machine_.Compute(initiator, EntryCost());
  // Publish the operation and update the page tables.
  co_await machine_.mem().Write(initiator, op_line_);
  co_await machine_.Compute(initiator, pages * 4 * machine_.cost().l1_hit);
  // Serial IPI loop.
  for (int c = 0; c < cores; ++c) {
    if (c == initiator) {
      continue;
    }
    co_await machine_.ipi().Send(initiator, c, kVectorShootdown);
    co_await machine_.Compute(initiator, SerialSendCost());
  }
  // Local invalidation.
  for (std::uint32_t i = 0; i < pages; ++i) {
    co_await machine_.tlb(initiator).Invalidate(vaddr + i * hw::kPageSize);
  }
  // Spin until every target acknowledged; each poll of the counter after a
  // target's write is a coherence miss.
  while (acks_received_ < acks_needed_) {
    co_await all_acked_.Wait();
  }
  co_await machine_.mem().Read(initiator, ack_line_);
  co_return machine_.exec().now() - t0;
}

}  // namespace mk::baseline
