// IPI-based TLB shootdown, as in Linux and Windows (section 5.1).
//
// A core changing a page mapping writes the operation to a well-known shared
// location and sends an inter-processor interrupt to every core that might
// cache the mapping. Each target takes the trap (~800 cycles), reads the
// operation from shared memory, invalidates its TLB entry, acknowledges by
// writing a shared counter, and resumes. The initiator continues once every
// IPI is acknowledged.
//
// Both costs that dominate the figure-7 baselines emerge from the model: the
// serial IPI send loop on the initiator (xAPIC requires polling the delivery
// status between sends) and the coherence traffic on the shared operation
// word and acknowledgement counter.
#ifndef MK_BASELINE_IPI_SHOOTDOWN_H_
#define MK_BASELINE_IPI_SHOOTDOWN_H_

#include <cstdint>
#include <vector>

#include "hw/machine.h"
#include "sim/event.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::baseline {

using sim::Cycles;
using sim::Task;

inline constexpr int kVectorShootdown = 0xfd;

class IpiShootdown {
 public:
  enum class Flavor {
    kLinux,    // mprotect path in Linux 2.6.26
    kWindows,  // VirtualProtect path in Windows Server 2008
  };

  IpiShootdown(hw::Machine& machine, Flavor flavor);

  // Changes the permissions of `pages` pages mapped by cores [0, cores):
  // page-table update + serial IPIs + wait for all acknowledgements.
  // Returns the end-to-end latency observed by the initiator.
  Task<Cycles> ChangeMapping(int initiator, int cores, std::uint64_t vaddr,
                             std::uint32_t pages);

 private:
  Task<> Target(int core, std::uint64_t generation);
  // Per-send serialization cost on the initiator (ICR write + delivery-status
  // poll; Windows adds its DPC bookkeeping).
  Cycles SerialSendCost() const;
  // Fixed syscall-side overhead of the mapping-change path.
  Cycles EntryCost() const;

  hw::Machine& machine_;
  Flavor flavor_;
  sim::Addr op_line_;    // shared operation descriptor
  sim::Addr ack_line_;   // shared acknowledgement counter
  std::uint64_t generation_ = 0;
  std::uint64_t vaddr_ = 0;
  std::uint32_t pages_ = 0;
  int acks_needed_ = 0;
  int acks_received_ = 0;
  sim::Event all_acked_;
};

}  // namespace mk::baseline

#endif  // MK_BASELINE_IPI_SHOOTDOWN_H_
