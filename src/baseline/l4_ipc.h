// L4-style synchronous same-core IPC baseline (paper Table 3).
//
// A classic microkernel IPC: sender and receiver are threads in different
// address spaces on the same core; a call is a direct context switch with a
// register-passed message. Fast, but every call switches address spaces
// (flushing the TLB on pre-tagged-TLB x86) and drags a larger cache footprint
// than URPC (Table 3: 25 I-cache + 13 D-cache lines vs URPC's 9 + 8).
//
// The raw one-way cost is a per-platform constant calibrated to the paper's
// measurement of L4Ka::Pistachio (424 cycles on the 2x2-core AMD system, the
// only platform the paper reports); other platforms carry estimates scaled by
// their kernel-path costs. The TLB flush is applied to the simulated TLB so
// downstream address translations observe the loss.
#ifndef MK_BASELINE_L4_IPC_H_
#define MK_BASELINE_L4_IPC_H_

#include <cstdint>

#include "hw/machine.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::baseline {

using sim::Cycles;
using sim::Task;

// Static cache-footprint constants from the paper's Table 3 (lines touched
// per IPC; these are code/data footprint properties, not simulated state).
inline constexpr int kL4IcacheLines = 25;
inline constexpr int kL4DcacheLines = 13;
inline constexpr int kUrpcIcacheLines = 9;
inline constexpr int kUrpcDcacheLines = 8;

class L4Ipc {
 public:
  L4Ipc(hw::Machine& machine, int core) : machine_(machine), core_(core) {}

  // Raw one-way IPC cost on this platform.
  Cycles RawLatency() const;

  // Synchronous call: one-way IPC to the server thread plus the implied
  // address-space switch (TLB flush side effect on this core).
  Task<> Call();

  // Round trip (call + reply).
  Task<> CallReply();

  std::uint64_t calls() const { return calls_; }

 private:
  hw::Machine& machine_;
  int core_;
  std::uint64_t calls_ = 0;
};

}  // namespace mk::baseline

#endif  // MK_BASELINE_L4_IPC_H_
