#include "baseline/shared_netstack.h"

namespace mk::baseline {

SharedKernelLoopback::SharedKernelLoopback(hw::Machine& machine, int node,
                                           LoopbackCosts costs)
    : machine_(machine), costs_(costs), lock_free_(machine.exec()),
      data_ready_(machine.exec()) {
  lock_line_ = machine_.mem().AllocLines(node, 1);
  meta_line_ = machine_.mem().AllocLines(node, 1);
  skb_meta_line_ = machine_.mem().AllocLines(node, 1);
  sock_line_ = machine_.mem().AllocLines(node, 1);
  buffer_region_ =
      machine_.mem().AllocLines(node, kSlots * kSlotBytes / sim::kCacheLineBytes);
}

Task<> SharedKernelLoopback::LockQueue(int core) {
  while (true) {
    co_await machine_.mem().Write(core, lock_line_);  // test-and-set
    if (!locked_) {
      locked_ = true;
      co_return;
    }
    co_await lock_free_.Wait();
  }
}

Task<> SharedKernelLoopback::UnlockQueue(int core) {
  locked_ = false;
  co_await machine_.mem().Write(core, lock_line_);
  lock_free_.SignalOne();
}

Task<> SharedKernelLoopback::Send(int core, net::Packet packet) {
  // Trap into the kernel, run the protocol stack, allocate an skb.
  co_await machine_.Syscall(core);
  co_await machine_.Compute(
      core, costs_.stack_out + costs_.skb_alloc +
                static_cast<Cycles>(static_cast<double>(packet.size()) *
                                    costs_.per_byte_copy));
  co_await LockQueue(core);
  // skb allocation touches the shared freelist; socket accounting too.
  co_await machine_.mem().Write(core, skb_meta_line_);
  co_await machine_.mem().Write(core, sock_line_);
  // Copy the payload into the shared kernel buffer and bump the queue state.
  std::uint64_t slot = slot_++ % kSlots;
  co_await machine_.mem().Write(core, buffer_region_ + slot * kSlotBytes, packet.size());
  co_await machine_.mem().Write(core, meta_line_);
  queue_.push_back(std::move(packet));
  co_await UnlockQueue(core);
  data_ready_.Signal();
}

Task<net::Packet> SharedKernelLoopback::Recv(int core) {
  co_await machine_.Syscall(core);
  while (true) {
    co_await LockQueue(core);
    co_await machine_.mem().Read(core, meta_line_);
    if (!queue_.empty()) {
      break;
    }
    co_await UnlockQueue(core);
    co_await data_ready_.Wait();
  }
  net::Packet packet = std::move(queue_.front());
  queue_.pop_front();
  // skb free + socket accounting on the consumer side.
  co_await machine_.mem().Write(core, skb_meta_line_);
  co_await machine_.mem().Write(core, sock_line_);
  std::uint64_t slot = pop_slot_++ % kSlots;
  // Read the kernel buffer and copy out to user space.
  co_await machine_.mem().Read(core, buffer_region_ + slot * kSlotBytes, packet.size());
  co_await machine_.mem().Write(core, meta_line_);
  co_await UnlockQueue(core);
  co_await machine_.Compute(
      core, costs_.stack_in + static_cast<Cycles>(static_cast<double>(packet.size()) *
                                                  costs_.per_byte_copy));
  co_return packet;
}

}  // namespace mk::baseline
