// The comparison system for Table 4: an in-kernel network stack with packet
// queues in shared data structures, as in Linux/Windows loopback.
//
// Loopback between two processes crosses the kernel twice and synchronizes
// through shared memory: each send is a system call that takes the queue
// lock, copies the payload into a kernel buffer, and updates shared queue
// state; each receive is a system call that takes the same lock, reads the
// buffer, and copies out. The lock line, queue metadata, and kernel buffers
// all ping-pong between the two cores' caches — the extra coherence traffic
// and D-cache misses the paper measures.
#ifndef MK_BASELINE_SHARED_NETSTACK_H_
#define MK_BASELINE_SHARED_NETSTACK_H_

#include <cstdint>
#include <deque>

#include "hw/machine.h"
#include "net/wire.h"
#include "sim/event.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::baseline {

using sim::Cycles;
using sim::Task;

struct LoopbackCosts {
  Cycles stack_in = 2600;   // same protocol work as the user-space stack
  Cycles stack_out = 2200;
  Cycles skb_alloc = 450;   // kernel buffer management per packet
  double per_byte_copy = 0.5;  // each user<->kernel copy, per byte
};

class SharedKernelLoopback {
 public:
  SharedKernelLoopback(hw::Machine& machine, int node = 0,
                       LoopbackCosts costs = LoopbackCosts());

  // Sender side: syscall, lock, copy into the kernel buffer, enqueue.
  Task<> Send(int core, net::Packet packet);

  // Receiver side: syscall, lock, dequeue, copy out. Blocks until data.
  Task<net::Packet> Recv(int core);

  std::size_t queued() const { return queue_.size(); }

 private:
  Task<> LockQueue(int core);
  Task<> UnlockQueue(int core);

  hw::Machine& machine_;
  LoopbackCosts costs_;
  sim::Addr lock_line_;
  sim::Addr meta_line_;      // head/tail indices
  sim::Addr skb_meta_line_;  // sk_buff freelist/accounting
  sim::Addr sock_line_;      // socket state + stats
  sim::Addr buffer_region_;  // kernel sk_buff data
  bool locked_ = false;
  sim::Event lock_free_;
  sim::Event data_ready_;
  std::deque<net::Packet> queue_;
  std::uint64_t slot_ = 0;
  std::uint64_t pop_slot_ = 0;
  static constexpr int kSlots = 64;
  static constexpr std::uint64_t kSlotBytes = 2048;
};

}  // namespace mk::baseline

#endif  // MK_BASELINE_SHARED_NETSTACK_H_
