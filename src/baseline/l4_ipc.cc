#include "baseline/l4_ipc.h"

#include <string_view>

namespace mk::baseline {

Cycles L4Ipc::RawLatency() const {
  // Measured on the 2x2-core AMD system (L4Ka::Pistachio, 2009-02-25 build);
  // estimates elsewhere scaled by the platform's kernel-path costs.
  std::string_view name = machine_.spec().name;
  if (name == "2x2-core AMD") {
    return 424;
  }
  if (name == "2x4-core Intel") {
    return 440;
  }
  if (name == "4x4-core AMD") {
    return 820;
  }
  if (name == "8x4-core AMD") {
    return 870;
  }
  return 424;
}

Task<> L4Ipc::Call() {
  ++calls_;
  co_await machine_.Compute(core_, RawLatency());
  // The address-space switch invalidates the core's TLB. Its cycle cost is
  // already inside the raw latency, but the lost translations are real.
  machine_.tlb(core_).FlushAllNoCost();
}

Task<> L4Ipc::CallReply() {
  co_await Call();
  co_await Call();
}

}  // namespace mk::baseline
