// Trace sinks: Perfetto/Chrome trace-event JSON and a per-category text
// summary. Both consume a Tracer's retained rings; the summary additionally
// reports the exact append-time totals (immune to ring wraparound), which
// tests cross-check against hw::PerfCounters.
#ifndef MK_TRACE_EXPORT_H_
#define MK_TRACE_EXPORT_H_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace mk::trace {

// Writes the retained records as a Chrome trace-event JSON object loadable in
// ui.perfetto.dev / chrome://tracing. Each BeginRun scope becomes a process
// (pid = run index) named after the run; each core becomes a thread track
// within it. Spans become complete ("X") events, instants become "i", and
// flow endpoints become "s"/"f" pairs keyed by flow id. Simulated cycles map
// 1:1 to nanoseconds (ts is microseconds, so ts = cycle / 1000).
void WritePerfettoJson(const Tracer& tracer, std::ostream& out);

// File-opening convenience; returns false if the file cannot be written.
bool WritePerfettoJson(const Tracer& tracer, const std::string& path);

// Per-category / per-event exact totals plus ring-retention stats.
struct Summary {
  struct CategoryStats {
    std::uint64_t count = 0;
    std::uint64_t span_cycles = 0;  // summed durations of span records
  };
  std::array<CategoryStats, kNumCategories> categories{};
  std::array<std::uint64_t, kNumEvents> events{};
  std::uint64_t total = 0;
  std::uint64_t retained = 0;
  std::uint64_t dropped = 0;
};

Summary Summarize(const Tracer& tracer);

// Renders `Summarize(tracer)` as an aligned text table (categories with their
// counts and cycle sums, then nonzero events, then retention stats).
void PrintSummary(const Tracer& tracer, std::ostream& out);

}  // namespace mk::trace

#endif  // MK_TRACE_EXPORT_H_
