// mk::trace — cycle-accurate, zero-allocation execution tracing.
//
// The simulator's observability layer: instrumented code emits compact POD
// records {cycle, core, category, event-id, 2×u64 args, flow-id} into
// per-core fixed-capacity ring buffers. Tracing is an *observer*, never a
// perturbation:
//
//   * zero simulated cycles — a trace point only reads the clock and writes
//     host memory; it can never schedule an event, charge a cost, or touch
//     simulated state, so every run is bit-identical with tracing on, off,
//     or compiled out (pinned by tests/determinism_test.cc);
//   * zero steady-state heap allocations — rings are allocated once per core
//     on first touch and then overwritten in place (newest records win,
//     drops are counted), so tracing a hot loop costs a mask test plus a
//     40-byte store (pinned by bench/microbench.cc);
//   * compile-time removal — `MK_TRACE_ENABLED` is a category bitmask; a
//     category whose bit is clear compiles to nothing at every trace point
//     (build with -DMK_TRACE_ENABLED=0 to strip the subsystem entirely).
//
// Cross-core causality is captured by flow ids: a URPC message's send on
// core A and its delivery on core B carry the same flow id, as do an IPI's
// send and receipt and a shootdown's per-replica TLB invalidations. The
// sinks in trace/export.h turn the rings into a Perfetto/Chrome JSON trace
// (one track per core, flow arrows between them) or a per-category text
// summary cross-checked against hw::PerfCounters.
#ifndef MK_TRACE_TRACE_H_
#define MK_TRACE_TRACE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/types.h"

// Compile-time category mask: a trace point whose category bit is clear is
// removed entirely (no branch, no argument use). Defaults to everything.
#ifndef MK_TRACE_ENABLED
#define MK_TRACE_ENABLED 0xffffffffu
#endif

namespace mk::trace {

// Event categories, one bit each in the runtime and compile-time masks.
enum class Category : std::uint8_t {
  kExec,       // executor dispatch batches
  kCoherence,  // cache misses, cache-to-cache transfers
  kIpi,        // inter-processor interrupt send/receive
  kTlb,        // TLB invalidations and flushes
  kUrpc,       // channel send / receive / block / wake
  kKernel,     // syscall, trap, LRPC, upcall paths
  kMonitor,    // collectives, 2PC phases, capability ops
  kNet,        // NIC DMA, interrupts, driver rings
  kFault,      // injected faults and recovery actions (mk::fault)
  kRecover,    // membership view changes and failover actions (mk::recover)
  kConn,       // TCP connection lifecycle (handshake, cookies, evict, timeout)
  kNumCategories,
};

inline constexpr std::size_t kNumCategories =
    static_cast<std::size_t>(Category::kNumCategories);

constexpr std::uint32_t CategoryBit(Category c) {
  return std::uint32_t{1} << static_cast<unsigned>(c);
}

inline constexpr std::uint32_t kAllCategories =
    (std::uint32_t{1} << kNumCategories) - 1;

inline constexpr std::uint32_t kCompiledCategories = MK_TRACE_ENABLED;

const char* CategoryName(Category c);

// Parses a comma-separated category list ("ipi,urpc,tlb", or "all") into a
// mask. Returns false on an unknown name (leaving *mask unspecified).
bool ParseCategoryList(const std::string& list, std::uint32_t* mask);

// Event identities. The category is fixed at the emit site; the id selects
// the name and the exporter's rendering of the args.
enum class EventId : std::uint8_t {
  kExecCycle,      // arg0 = events dispatched at this cycle
  kCohMiss,        // arg0 = line address, arg1 = latency charged
  kCohC2C,         // arg0 = line address, arg1 = supplying core
  kIpiSend,        // arg0 = destination core, arg1 = vector
  kIpiRecv,        // arg0 = source core, arg1 = vector
  kTlbInvalidate,  // arg0 = vaddr
  kTlbFlush,       // arg0 = entries dropped
  kTlbShootdown,   // flow endpoints of a shootdown wave; arg0 = vaddr
  kUrpcSend,       // span; arg0 = message tag
  kUrpcRecv,       // span; arg0 = message tag
  kUrpcBlock,      // receiver exhausted its poll window and blocked
  kUrpcWake,       // sender posted a wake-up IPI for a blocked receiver
  kSyscall,        // span
  kTrap,           // span
  kLrpcCall,       // span; arg0 = endpoint
  kLrpcDeliver,    // span; arg0 = endpoint
  kUpcall,         // span; wake-up delivery (trap + context switch)
  kMonCollective,  // span; arg0 = op id, initiator side
  kMon2pcPrepare,  // span; arg0 = op id
  kMon2pcCommit,   // span; arg0 = op id
  kMon2pcAbort,    // span; arg0 = op id
  kMonHandleOp,    // arg0 = op id, arg1 = OpKind
  kCapPrepare,     // arg0 = op id, arg1 = vote
  kCapCommit,      // arg0 = op id
  kCapAbort,       // arg0 = op id
  kCapTransfer,    // arg0 = op id
  kNetRxWire,      // arg0 = frame bytes
  kNetRxPop,       // span; arg0 = frame bytes
  kNetTxPush,      // span; arg0 = frame bytes
  kNetTxWire,      // arg0 = frame bytes
  kNetIrq,         // RX interrupt raised
  kFaultCoreHalt,       // arg0 = halted core (first observation)
  kFaultIpiDrop,        // arg0 = destination core, arg1 = vector
  kFaultIpiDelay,       // arg0 = destination core, arg1 = extra cycles
  kFaultFrameDrop,      // arg0 = frame bytes (RX or TX per arg1: 0=rx, 1=tx)
  kFaultFrameCorrupt,   // arg0 = frame bytes
  kFaultLinkSpike,      // arg0 = extra cycles charged
  kFault2pcTimeout,     // arg0 = op id, arg1 = phase attempt
  kFaultExcludeCore,    // arg0 = excluded core
  kFaultTcpRetransmit,  // arg0 = seq, arg1 = retransmission number
  kFaultNsEvict,        // arg0 = service id, arg1 = dead owner core
  kRecoverViewPropose,  // arg0 = proposed epoch, arg1 = dead core
  kRecoverViewCommit,   // arg0 = committed epoch, arg1 = live-core count
  kRecoverResteer,      // arg0 = dead queue, arg1 = RETA slots rewritten
  kRecoverFlowAdopt,    // arg0 = adopting queue, arg1 = flow hash
  kRecoverDbRepoint,    // arg0 = dead replica shard, arg1 = new replica shard
  kRecoverDbRespawn,    // arg0 = replaced shard, arg1 = spare db core
  kRecoverShed,         // arg0 = shed cause (0=queue-full, 1=deadline, 2=progress)
  kConnSynRcvd,         // half-open created; arg0 = remote ip, arg1 = remote port
  kConnEstablished,     // arg0 = remote ip, arg1 = remote port
  kConnCookieSent,      // stateless SYN-ACK; arg0 = remote ip, arg1 = cookie ISN
  kConnCookieAccept,    // cookie ACK validated; arg0 = remote ip, arg1 = cookie ISN
  kConnClose,           // conn left the table; arg0 = cause (net::CloseCause)
  kConnTimeWait,        // active close parked; arg0 = remote ip, arg1 = remote port
  kConnEvict,           // forced out; arg0 = cause (0=half-open expiry, 1=abandoned)
  kConnTimeout,         // deadline fired; arg0 = kind (0=connect, 1=idle, 2=progress)
  kNumEvents,
};

inline constexpr std::size_t kNumEvents = static_cast<std::size_t>(EventId::kNumEvents);

const char* EventName(EventId e);

// How the exporter renders a record. Span records carry their duration in
// arg1 (cycle = span start). Flow records are the endpoints of a cross-core
// arrow; paired endpoints carry the same flow id.
enum class Phase : std::uint8_t {
  kInstant,
  kSpan,         // arg1 = duration
  kFlowOut,      // instant, flow origin
  kFlowIn,       // instant, flow destination
  kSpanFlowOut,  // span (arg1 = duration) that originates a flow
  kSpanFlowIn,   // span (arg1 = duration) that terminates a flow
};

// Flow-id namespaces: the top byte keeps ids from different subsystems from
// colliding in one trace.
inline constexpr std::uint64_t kFlowIpi = std::uint64_t{1} << 56;
inline constexpr std::uint64_t kFlowUrpc = std::uint64_t{2} << 56;
inline constexpr std::uint64_t kFlowNet = std::uint64_t{3} << 56;
inline constexpr std::uint64_t kFlowShootdown = std::uint64_t{4} << 56;

// One trace record. POD, fixed size, no ownership — rings copy these in
// place. `run` labels which Tracer::BeginRun scope the record belongs to
// (benches re-run workloads on fresh executors whose clocks restart at 0;
// the exporter gives each run its own Perfetto process group).
struct Record {
  sim::Cycles cycle = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint64_t flow = 0;
  std::uint16_t core = 0;
  std::uint16_t run = 0;
  Category category = Category::kExec;
  EventId event = EventId::kExecCycle;
  Phase phase = Phase::kInstant;
  std::uint8_t reserved = 0;
};
static_assert(sizeof(Record) == 40, "compact POD record");
static_assert(std::is_trivially_copyable_v<Record>);

// Track id used by the executor itself (it has no core); exporters render it
// as its own named track.
inline constexpr std::uint16_t kExecutorTrack = 255;

// Per-core fixed-capacity overwrite-oldest ring plus exact per-category /
// per-event totals (kept at append time, so summaries stay exact even after
// the ring wraps).
//
// Thread model under the parallel engine (sim/parallel.h): each engine
// domain emits on its own disjoint track range (the engine publishes a
// per-thread track offset that Emit() folds into Record::core), so every
// ring has exactly one writer. The ring table is pre-sized to the full
// offset range — no slot is ever created or moved concurrently — and the
// exact totals are relaxed atomics (counters, not synchronization).
// Snapshots and summaries run after the engine joins its workers.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 14;
  // Ring-table slots reserved up front: sim::kMaxDomains (64) domains of 512
  // tracks each. Slots are 8-byte pointers until a track is touched.
  static constexpr std::size_t kPresizedTracks = std::size_t{1} << 15;

  explicit Tracer(std::size_t capacity_per_core = kDefaultCapacity,
                  std::uint32_t mask = kAllCategories);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  // Process-wide active tracer (the simulator is single-threaded by design).
  // Installing a second tracer over an active one is an error; destruction
  // uninstalls automatically.
  void Install();
  void Uninstall();
  static Tracer* active();

  std::uint32_t mask() const { return mask_; }
  void set_mask(std::uint32_t m) { mask_ = m; }

  // Opens a new labeled run scope; subsequent records are stamped with its
  // index. Useful when one session traces several independent executors.
  std::uint16_t BeginRun(std::string name);
  std::uint16_t current_run() const { return current_run_; }
  const std::vector<std::string>& run_names() const { return run_names_; }

  // Appends `r` to its core's ring. Zero heap allocations once the core's
  // ring exists (first touch allocates it). Safe from multiple engine
  // workers as long as each track has one writer (the engine's per-domain
  // track offsets guarantee this).
  void Append(const Record& r) {
    Ring* ring = r.core < rings_.size() ? rings_[r.core].get() : nullptr;
    if (ring == nullptr) {
      ring = &GrowRing(r.core);
    }
    ring->records[ring->writes % capacity_] = r;
    ++ring->writes;
    event_count_[static_cast<std::size_t>(r.event)].fetch_add(1, std::memory_order_relaxed);
    auto cat = static_cast<std::size_t>(r.category);
    category_count_[cat].fetch_add(1, std::memory_order_relaxed);
    if (r.phase == Phase::kSpan || r.phase == Phase::kSpanFlowOut ||
        r.phase == Phase::kSpanFlowIn) {
      category_cycles_[cat].fetch_add(r.arg1, std::memory_order_relaxed);
    }
  }

  std::size_t capacity_per_core() const { return capacity_; }

  // Exact totals (independent of ring wraparound).
  std::uint64_t event_count(EventId e) const {
    return event_count_[static_cast<std::size_t>(e)].load(std::memory_order_relaxed);
  }
  std::uint64_t category_count(Category c) const {
    return category_count_[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  }
  std::uint64_t category_cycles(Category c) const {
    return category_cycles_[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  }
  std::uint64_t total_records() const;

  // Records lost to ring wraparound (oldest-first) on `core` / overall.
  std::uint64_t dropped(std::uint16_t core) const;
  std::uint64_t total_dropped() const;

  // Cores (track ids) that have at least one record.
  std::vector<std::uint16_t> active_tracks() const;

  // The retained records, merged across cores, stably sorted by cycle.
  std::vector<Record> Snapshot() const;

 private:
  struct Ring {
    std::unique_ptr<Record[]> records;
    std::uint64_t writes = 0;
  };

  Ring& GrowRing(std::uint16_t core);

  std::size_t capacity_;
  std::uint32_t mask_;
  std::uint16_t current_run_ = 0;
  bool installed_ = false;
  std::vector<std::string> run_names_;
  std::vector<std::unique_ptr<Ring>> rings_;  // pre-sized; slots fill on first touch
  std::array<std::atomic<std::uint64_t>, kNumEvents> event_count_{};
  std::array<std::atomic<std::uint64_t>, kNumCategories> category_count_{};
  std::array<std::atomic<std::uint64_t>, kNumCategories> category_cycles_{};
};

namespace internal {
// Defined in trace.cc; read through Tracer::active() / the emit fast path.
extern Tracer* g_active;
// Folded into Record::core by Emit(). The parallel engine sets it to
// domain * track_stride around each domain's run/drain phase, giving every
// domain a disjoint track range (and thus single-writer rings) without any
// emit site knowing about domains. 0 everywhere else, so single-threaded
// traces are unchanged.
inline thread_local std::uint16_t tls_track_offset = 0;
}  // namespace internal

inline Tracer* Tracer::active() { return internal::g_active; }

// The trace point. Category is a template parameter so a compiled-out
// category vanishes (if constexpr), and an enabled one costs one pointer
// test plus one mask test before touching the ring.
template <Category C>
[[gnu::always_inline]] inline void Emit(EventId event, sim::Cycles cycle, int core,
                                        std::uint64_t arg0 = 0, std::uint64_t arg1 = 0,
                                        std::uint64_t flow = 0,
                                        Phase phase = Phase::kInstant) {
  if constexpr ((kCompiledCategories & CategoryBit(C)) != 0) {
    Tracer* t = internal::g_active;
    if (t == nullptr || (t->mask() & CategoryBit(C)) == 0) {
      return;
    }
    Record r;
    r.cycle = cycle;
    r.arg0 = arg0;
    r.arg1 = arg1;
    r.flow = flow;
    r.core = static_cast<std::uint16_t>(core + internal::tls_track_offset);
    r.run = t->current_run();
    r.category = C;
    r.event = event;
    r.phase = phase;
    t->Append(r);
  } else {
    (void)event;
    (void)cycle;
    (void)core;
    (void)arg0;
    (void)arg1;
    (void)flow;
    (void)phase;
  }
}

// Span convenience: record covers [start, end) and renders as a slice.
template <Category C>
[[gnu::always_inline]] inline void EmitSpan(EventId event, sim::Cycles start,
                                            sim::Cycles end, int core,
                                            std::uint64_t arg0 = 0, std::uint64_t flow = 0,
                                            Phase phase = Phase::kSpan) {
  Emit<C>(event, start, core, arg0, end - start, flow, phase);
}

// True if any tracer is installed and has `c` enabled — for the rare site
// that wants to skip computing emit arguments.
template <Category C>
[[gnu::always_inline]] inline bool Enabled() {
  if constexpr ((kCompiledCategories & CategoryBit(C)) != 0) {
    Tracer* t = internal::g_active;
    return t != nullptr && (t->mask() & CategoryBit(C)) != 0;
  } else {
    return false;
  }
}

}  // namespace mk::trace

#endif  // MK_TRACE_TRACE_H_
