#include "trace/trace.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <utility>

namespace mk::trace {

namespace internal {
Tracer* g_active = nullptr;
}  // namespace internal

const char* CategoryName(Category c) {
  switch (c) {
    case Category::kExec: return "exec";
    case Category::kCoherence: return "coherence";
    case Category::kIpi: return "ipi";
    case Category::kTlb: return "tlb";
    case Category::kUrpc: return "urpc";
    case Category::kKernel: return "kernel";
    case Category::kMonitor: return "monitor";
    case Category::kNet: return "net";
    case Category::kFault: return "fault";
    case Category::kRecover: return "recover";
    case Category::kConn: return "conn";
    case Category::kNumCategories: break;
  }
  return "?";
}

const char* EventName(EventId e) {
  switch (e) {
    case EventId::kExecCycle: return "exec_cycle";
    case EventId::kCohMiss: return "coh_miss";
    case EventId::kCohC2C: return "coh_c2c";
    case EventId::kIpiSend: return "ipi_send";
    case EventId::kIpiRecv: return "ipi_recv";
    case EventId::kTlbInvalidate: return "tlb_invalidate";
    case EventId::kTlbFlush: return "tlb_flush";
    case EventId::kTlbShootdown: return "tlb_shootdown";
    case EventId::kUrpcSend: return "urpc_send";
    case EventId::kUrpcRecv: return "urpc_recv";
    case EventId::kUrpcBlock: return "urpc_block";
    case EventId::kUrpcWake: return "urpc_wake";
    case EventId::kSyscall: return "syscall";
    case EventId::kTrap: return "trap";
    case EventId::kLrpcCall: return "lrpc_call";
    case EventId::kLrpcDeliver: return "lrpc_deliver";
    case EventId::kUpcall: return "upcall";
    case EventId::kMonCollective: return "mon_collective";
    case EventId::kMon2pcPrepare: return "mon_2pc_prepare";
    case EventId::kMon2pcCommit: return "mon_2pc_commit";
    case EventId::kMon2pcAbort: return "mon_2pc_abort";
    case EventId::kMonHandleOp: return "mon_handle_op";
    case EventId::kCapPrepare: return "cap_prepare";
    case EventId::kCapCommit: return "cap_commit";
    case EventId::kCapAbort: return "cap_abort";
    case EventId::kCapTransfer: return "cap_transfer";
    case EventId::kNetRxWire: return "net_rx_wire";
    case EventId::kNetRxPop: return "net_rx_pop";
    case EventId::kNetTxPush: return "net_tx_push";
    case EventId::kNetTxWire: return "net_tx_wire";
    case EventId::kNetIrq: return "net_irq";
    case EventId::kFaultCoreHalt: return "fault_core_halt";
    case EventId::kFaultIpiDrop: return "fault_ipi_drop";
    case EventId::kFaultIpiDelay: return "fault_ipi_delay";
    case EventId::kFaultFrameDrop: return "fault_frame_drop";
    case EventId::kFaultFrameCorrupt: return "fault_frame_corrupt";
    case EventId::kFaultLinkSpike: return "fault_link_spike";
    case EventId::kFault2pcTimeout: return "fault_2pc_timeout";
    case EventId::kFaultExcludeCore: return "fault_exclude_core";
    case EventId::kFaultTcpRetransmit: return "fault_tcp_retransmit";
    case EventId::kFaultNsEvict: return "fault_ns_evict";
    case EventId::kRecoverViewPropose: return "recover_view_propose";
    case EventId::kRecoverViewCommit: return "recover_view_commit";
    case EventId::kRecoverResteer: return "recover_resteer";
    case EventId::kRecoverFlowAdopt: return "recover_flow_adopt";
    case EventId::kRecoverDbRepoint: return "recover_db_repoint";
    case EventId::kRecoverDbRespawn: return "recover_db_respawn";
    case EventId::kRecoverShed: return "recover_shed";
    case EventId::kConnSynRcvd: return "conn_syn_rcvd";
    case EventId::kConnEstablished: return "conn_established";
    case EventId::kConnCookieSent: return "conn_cookie_sent";
    case EventId::kConnCookieAccept: return "conn_cookie_accept";
    case EventId::kConnClose: return "conn_close";
    case EventId::kConnTimeWait: return "conn_time_wait";
    case EventId::kConnEvict: return "conn_evict";
    case EventId::kConnTimeout: return "conn_timeout";
    case EventId::kNumEvents: break;
  }
  return "?";
}

bool ParseCategoryList(const std::string& list, std::uint32_t* mask) {
  std::uint32_t out = 0;
  std::istringstream in(list);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    if (token == "all") {
      out |= kAllCategories;
      continue;
    }
    bool found = false;
    for (std::size_t i = 0; i < kNumCategories; ++i) {
      auto c = static_cast<Category>(i);
      if (token == CategoryName(c)) {
        out |= CategoryBit(c);
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  *mask = out;
  return true;
}

Tracer::Tracer(std::size_t capacity_per_core, std::uint32_t mask)
    : capacity_(capacity_per_core == 0 ? 1 : capacity_per_core), mask_(mask) {
  // Pre-size the ring table so Append never resizes it: under the parallel
  // engine, workers on different tracks touch disjoint slots of a stable
  // vector. Empty slots cost one pointer each.
  rings_.resize(kPresizedTracks);
  run_names_.push_back("run0");
}

Tracer::~Tracer() {
  if (installed_) Uninstall();
}

void Tracer::Install() {
  assert(internal::g_active == nullptr && "another tracer is already active");
  internal::g_active = this;
  installed_ = true;
}

void Tracer::Uninstall() {
  if (internal::g_active == this) internal::g_active = nullptr;
  installed_ = false;
}

std::uint16_t Tracer::BeginRun(std::string name) {
  run_names_.push_back(std::move(name));
  current_run_ = static_cast<std::uint16_t>(run_names_.size() - 1);
  return current_run_;
}

Tracer::Ring& Tracer::GrowRing(std::uint16_t core) {
  if (rings_.size() <= core) rings_.resize(core + 1);
  auto ring = std::make_unique<Ring>();
  ring->records = std::make_unique<Record[]>(capacity_);
  rings_[core] = std::move(ring);
  return *rings_[core];
}

std::uint64_t Tracer::total_records() const {
  std::uint64_t n = 0;
  for (const auto& c : event_count_) n += c.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t Tracer::dropped(std::uint16_t core) const {
  if (core >= rings_.size() || rings_[core] == nullptr) return 0;
  const Ring& ring = *rings_[core];
  return ring.writes > capacity_ ? ring.writes - capacity_ : 0;
}

std::uint64_t Tracer::total_dropped() const {
  std::uint64_t n = 0;
  for (std::size_t c = 0; c < rings_.size(); ++c) {
    n += dropped(static_cast<std::uint16_t>(c));
  }
  return n;
}

std::vector<std::uint16_t> Tracer::active_tracks() const {
  std::vector<std::uint16_t> out;
  for (std::size_t c = 0; c < rings_.size(); ++c) {
    if (rings_[c] != nullptr && rings_[c]->writes > 0) {
      out.push_back(static_cast<std::uint16_t>(c));
    }
  }
  return out;
}

std::vector<Record> Tracer::Snapshot() const {
  std::vector<Record> out;
  std::uint64_t retained = 0;
  for (const auto& ring : rings_) {
    if (ring != nullptr) retained += std::min<std::uint64_t>(ring->writes, capacity_);
  }
  out.reserve(retained);
  for (const auto& ring : rings_) {
    if (ring == nullptr || ring->writes == 0) continue;
    // Oldest retained record first: once wrapped, that is the current write
    // position; before wrapping, index 0.
    std::uint64_t n = std::min<std::uint64_t>(ring->writes, capacity_);
    std::uint64_t start = ring->writes > capacity_ ? ring->writes % capacity_ : 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      out.push_back(ring->records[(start + i) % capacity_]);
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
    if (a.run != b.run) return a.run < b.run;
    return a.cycle < b.cycle;
  });
  return out;
}

}  // namespace mk::trace
