#include "trace/export.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <vector>

namespace mk::trace {
namespace {

// Cycles → trace-event "ts" (microseconds, fractional). One cycle = 1 ns.
double TsMicros(sim::Cycles cycle) { return static_cast<double>(cycle) / 1000.0; }

void WriteCommon(std::ostream& out, const Record& r) {
  out << "\"ts\":" << TsMicros(r.cycle) << ",\"pid\":" << r.run
      << ",\"tid\":" << r.core << ",\"cat\":\"" << CategoryName(r.category)
      << "\",\"name\":\"" << EventName(r.event) << "\"";
}

void WriteArgs(std::ostream& out, const Record& r) {
  out << ",\"args\":{\"arg0\":" << r.arg0 << ",\"arg1\":" << r.arg1;
  if (r.flow != 0) out << ",\"flow\":" << r.flow;
  out << "}";
}

// Flow endpoints ("s"/"f") must be unique per flow id within a trace;
// namespaced ids (see kFlow* in trace.h) are already unique per message, but
// two runs may reuse them, so fold the run index in.
std::uint64_t FlowBindId(const Record& r) {
  return r.flow ^ (static_cast<std::uint64_t>(r.run) << 48);
}

void WriteFlowEvent(std::ostream& out, const Record& r, bool origin) {
  out << "{\"ph\":\"" << (origin ? 's' : 'f') << "\"";
  if (!origin) out << ",\"bp\":\"e\"";
  out << ",\"id\":" << FlowBindId(r) << ",";
  // Terminate the flow at the span's end so the arrow lands on the slice.
  Record at = r;
  if (!origin && (r.phase == Phase::kSpanFlowIn)) at.cycle = r.cycle + r.arg1;
  if (origin && (r.phase == Phase::kSpanFlowOut)) at.cycle = r.cycle + r.arg1;
  WriteCommon(out, at);
  out << "}";
}

}  // namespace

void WritePerfettoJson(const Tracer& tracer, std::ostream& out) {
  std::vector<Record> records = tracer.Snapshot();
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Metadata: one process per run, one named thread track per core.
  const auto& runs = tracer.run_names();
  std::vector<bool> run_seen(runs.size(), false);
  std::vector<std::vector<bool>> track_seen(runs.size());
  for (const Record& r : records) {
    if (r.run < runs.size() && !run_seen[r.run]) {
      run_seen[r.run] = true;
      sep();
      out << "{\"ph\":\"M\",\"pid\":" << r.run
          << ",\"name\":\"process_name\",\"args\":{\"name\":\"" << runs[r.run]
          << "\"}}";
    }
    if (r.run < runs.size()) {
      auto& seen = track_seen[r.run];
      if (seen.size() <= r.core) seen.resize(r.core + 1, false);
      if (!seen[r.core]) {
        seen[r.core] = true;
        sep();
        out << "{\"ph\":\"M\",\"pid\":" << r.run << ",\"tid\":" << r.core
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
        if (r.core == kExecutorTrack) {
          out << "executor";
        } else {
          out << "core " << r.core;
        }
        out << "\"}}";
      }
    }
  }

  out << std::setprecision(15);
  for (const Record& r : records) {
    switch (r.phase) {
      case Phase::kInstant:
      case Phase::kFlowOut:
      case Phase::kFlowIn:
        sep();
        out << "{\"ph\":\"i\",\"s\":\"t\",";
        WriteCommon(out, r);
        WriteArgs(out, r);
        out << "}";
        break;
      case Phase::kSpan:
      case Phase::kSpanFlowOut:
      case Phase::kSpanFlowIn:
        sep();
        out << "{\"ph\":\"X\",\"dur\":" << TsMicros(r.arg1) << ",";
        WriteCommon(out, r);
        WriteArgs(out, r);
        out << "}";
        break;
    }
    if (r.phase == Phase::kFlowOut || r.phase == Phase::kSpanFlowOut) {
      sep();
      WriteFlowEvent(out, r, /*origin=*/true);
    } else if (r.phase == Phase::kFlowIn || r.phase == Phase::kSpanFlowIn) {
      sep();
      WriteFlowEvent(out, r, /*origin=*/false);
    }
  }
  out << "\n]}\n";
}

bool WritePerfettoJson(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WritePerfettoJson(tracer, out);
  return static_cast<bool>(out);
}

Summary Summarize(const Tracer& tracer) {
  Summary s;
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    auto c = static_cast<Category>(i);
    s.categories[i].count = tracer.category_count(c);
    s.categories[i].span_cycles = tracer.category_cycles(c);
    s.total += s.categories[i].count;
  }
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    s.events[i] = tracer.event_count(static_cast<EventId>(i));
  }
  s.dropped = tracer.total_dropped();
  s.retained = s.total - s.dropped;
  return s;
}

void PrintSummary(const Tracer& tracer, std::ostream& out) {
  Summary s = Summarize(tracer);
  out << "trace summary: " << s.total << " records (" << s.retained
      << " retained, " << s.dropped << " dropped)\n";
  out << "  " << std::left << std::setw(12) << "category" << std::right
      << std::setw(12) << "count" << std::setw(16) << "span-cycles" << "\n";
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    if (s.categories[i].count == 0) continue;
    out << "  " << std::left << std::setw(12)
        << CategoryName(static_cast<Category>(i)) << std::right << std::setw(12)
        << s.categories[i].count << std::setw(16) << s.categories[i].span_cycles
        << "\n";
  }
  out << "  " << std::left << std::setw(16) << "event" << std::right
      << std::setw(12) << "count" << "\n";
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    if (s.events[i] == 0) continue;
    out << "  " << std::left << std::setw(16)
        << EventName(static_cast<EventId>(i)) << std::right << std::setw(12)
        << s.events[i] << "\n";
  }
}

}  // namespace mk::trace
