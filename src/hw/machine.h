// Machine: the assembled hardware model — topology, coherent memory, TLBs,
// IPI fabric, per-core execution resources, and performance counters.
#ifndef MK_HW_MACHINE_H_
#define MK_HW_MACHINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "hw/coherence.h"
#include "hw/counters.h"
#include "hw/platform.h"
#include "hw/tlb.h"
#include "hw/topology.h"
#include "sim/event.h"
#include "sim/executor.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::hw {

class Machine;

// Delivers inter-processor interrupts. The kernel registers one handler per
// core; delivery charges wire latency and invokes the handler, which is
// responsible for charging the receive-side trap cost. `payload` is a
// small out-of-band word carried with the vector (the wake-up path uses it
// for the blocked-waiter token, so wake-ups can never be misattributed when
// IPIs from different senders arrive out of send order).
class IpiFabric {
 public:
  using Handler = std::function<void(int vector, std::uint64_t payload)>;

  IpiFabric(sim::Executor& exec, const PlatformSpec& spec, const Topology& topo,
            PerfCounters& counters)
      : exec_(exec), spec_(spec), topo_(topo), counters_(counters),
        handlers_(topo.num_cores()) {}

  void SetHandler(int core, Handler handler) { handlers_[core] = std::move(handler); }

  // Charges the APIC command cost to the sender and schedules delivery. An
  // installed fault::Injector may drop the IPI (charged but never delivered),
  // delay it, or — if the destination has fail-stop halted — silence it.
  sim::Task<> Send(int from, int to, int vector, std::uint64_t payload = 0);

 private:
  sim::Executor& exec_;
  const PlatformSpec& spec_;
  const Topology& topo_;
  PerfCounters& counters_;
  std::vector<Handler> handlers_;
  std::uint64_t next_flow_ = 0;  // trace flow serial; advances whether or not tracing is on
};

class Machine {
 public:
  Machine(sim::Executor& exec, PlatformSpec spec);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  sim::Executor& exec() { return exec_; }
  const PlatformSpec& spec() const { return spec_; }
  const CostBook& cost() const { return spec_.cost; }
  const Topology& topo() const { return topo_; }
  int num_cores() const { return topo_.num_cores(); }

  CoherentMemory& mem() { return mem_; }
  IpiFabric& ipi() { return ipi_; }
  PerfCounters& counters() { return counters_; }
  Tlb& tlb(int core) { return *tlbs_[core]; }

  // Occupies `core` for `cycles` of computation. Concurrent Compute calls on
  // the same core serialize FIFO, modeling a busy core.
  sim::Task<> Compute(int core, sim::Cycles cycles);

  // Charges a trap (interrupt/exception entry + exit) on `core`.
  sim::Task<> Trap(int core);

  // Charges a system-call round trip on `core`.
  sim::Task<> Syscall(int core);

  // Hands out trace-flow serials for URPC channels built on this machine.
  // Serials are observer-only (they namespace flow ids, never the schedule)
  // and scoped to the machine rather than a process-wide counter, so under
  // the parallel engine channel construction in one domain neither races
  // with nor renumbers channels in another. The machine id (assigned at
  // construction, setup-time deterministic) keeps flows from colliding
  // across machines in one trace.
  std::uint64_t NextChannelSerial() {
    return (static_cast<std::uint64_t>(machine_id_) << 20) | ++channel_serial_;
  }
  int machine_id() const { return machine_id_; }

 private:
  sim::Executor& exec_;
  int machine_id_;
  std::uint64_t channel_serial_ = 0;
  PlatformSpec spec_;
  Topology topo_;
  PerfCounters counters_;
  CoherentMemory mem_;
  IpiFabric ipi_;
  std::vector<std::unique_ptr<Tlb>> tlbs_;
  std::vector<sim::FifoResource> core_busy_;
};

}  // namespace mk::hw

#endif  // MK_HW_MACHINE_H_
