#include "hw/topology.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace mk::hw {

Topology::Topology(const PlatformSpec& spec)
    : packages_(spec.packages),
      cores_per_package_(spec.cores_per_package()),
      cores_per_die_(spec.cores_per_die),
      num_cores_(spec.num_cores()),
      shared_cache_per_die_(spec.shared_cache_per_die),
      shared_cache_per_package_(spec.shared_cache_per_package) {
  // Build the directed adjacency from the spec's undirected link list; an
  // empty list means fully connected.
  std::vector<std::vector<int>> adj(packages_);
  auto add_link = [&](int a, int b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
    links_.emplace_back(a, b);
    links_.emplace_back(b, a);
  };
  if (spec.links.empty()) {
    for (int a = 0; a < packages_; ++a) {
      for (int b = a + 1; b < packages_; ++b) {
        add_link(a, b);
      }
    }
  } else {
    for (auto [a, b] : spec.links) {
      if (a < 0 || b < 0 || a >= packages_ || b >= packages_ || a == b) {
        throw std::invalid_argument("bad link in platform spec");
      }
      add_link(a, b);
    }
  }

  // All-pairs BFS for hop counts and next-hop routing.
  hops_.assign(packages_, std::vector<int>(packages_, -1));
  next_hop_.assign(packages_, std::vector<int>(packages_, -1));
  for (int src = 0; src < packages_; ++src) {
    hops_[src][src] = 0;
    next_hop_[src][src] = src;
    std::deque<int> frontier{src};
    std::vector<int> parent(packages_, -1);
    while (!frontier.empty()) {
      int u = frontier.front();
      frontier.pop_front();
      for (int v : adj[u]) {
        if (hops_[src][v] == -1) {
          hops_[src][v] = hops_[src][u] + 1;
          parent[v] = u;
          frontier.push_back(v);
        }
      }
    }
    for (int dst = 0; dst < packages_; ++dst) {
      if (hops_[src][dst] < 0) {
        throw std::invalid_argument("disconnected interconnect topology");
      }
      // Walk back from dst to the neighbor of src.
      int v = dst;
      while (v != src && parent[v] != src) {
        v = parent[v];
      }
      next_hop_[src][dst] = v;
    }
  }

  eccentricity_.assign(packages_, 0);
  for (int p = 0; p < packages_; ++p) {
    eccentricity_[p] = *std::max_element(hops_[p].begin(), hops_[p].end());
    diameter_ = std::max(diameter_, eccentricity_[p]);
  }
}

bool Topology::SharesCache(int a, int b) const {
  if (a == b) {
    return true;
  }
  if (PackageOf(a) != PackageOf(b)) {
    return false;
  }
  if (shared_cache_per_package_) {
    return true;
  }
  return shared_cache_per_die_ && DieOf(a) == DieOf(b);
}

std::vector<int> Topology::PackageLeaders() const {
  std::vector<int> leaders;
  leaders.reserve(packages_);
  for (int p = 0; p < packages_; ++p) {
    leaders.push_back(p * cores_per_package_);
  }
  return leaders;
}

std::vector<int> Topology::CoresOf(int pkg) const {
  std::vector<int> cores;
  cores.reserve(cores_per_package_);
  for (int i = 0; i < cores_per_package_; ++i) {
    cores.push_back(pkg * cores_per_package_ + i);
  }
  return cores;
}

}  // namespace mk::hw
