// Cache-coherence model: MOESI-style line states with broadcast probes
// (HyperTransport) or a snoop-filtered shared bus (front-side bus).
//
// The model tracks, per 64-byte line: which cores hold a copy, which core (if
// any) holds it modified, and the line's home NUMA node. Each transaction
// computes a latency from the platform cost book plus FIFO queueing at the
// contended resource (home memory controller for fetches/upgrades, source
// package for cache-to-cache supply, the shared bus on FSB machines), charges
// the simulated clock, and records traffic on every link the transaction
// crosses.
//
// Four access flavors map to what real code paths do:
//   Read          - blocking load (polling a channel word, reading a message)
//   ReadPrefetched- load in a poll loop over an array of channel lines, where
//                   the hardware stride prefetcher hides most of the transfer
//                   (section 4.6 of the paper)
//   Write         - blocking store: completes after ownership is acquired
//                   (a synchronous message send)
//   WritePosted   - store retired through the store buffer; ownership is
//                   acquired in the background (pipelined/async sends).
#ifndef MK_HW_COHERENCE_H_
#define MK_HW_COHERENCE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hw/counters.h"
#include "hw/platform.h"
#include "hw/topology.h"
#include "sim/event.h"
#include "sim/executor.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::hw {

using sim::Addr;
using sim::Cycles;
using sim::Task;

class CoherentMemory {
 public:
  CoherentMemory(sim::Executor& exec, const PlatformSpec& spec, const Topology& topo,
                 PerfCounters& counters);

  // Allocates `lines` consecutive cache lines homed on NUMA node `node`.
  // Returns the base address (line-aligned).
  Addr AllocLines(int node, std::uint64_t lines);

  // Blocking accesses covering [addr, addr+bytes). Latency is charged to the
  // simulated clock before the task resumes; the latency is also returned.
  Task<Cycles> Read(int core, Addr addr, std::uint64_t bytes = sim::kCacheLineBytes);
  Task<Cycles> Write(int core, Addr addr, std::uint64_t bytes = sim::kCacheLineBytes);

  // Poll-loop read benefiting from the stride prefetcher: a miss costs
  // cost.prefetched_read instead of a full transfer round trip. Coherence
  // state transitions and traffic are accounted identically to Read.
  Task<Cycles> ReadPrefetched(int core, Addr addr, std::uint64_t bytes = sim::kCacheLineBytes);

  // Store retired through the store buffer: the caller is charged only the
  // retire cost; ownership acquisition happens logically in the background
  // (state/traffic/contention are still accounted).
  Task<Cycles> WritePosted(int core, Addr addr, std::uint64_t bytes = sim::kCacheLineBytes);

  // True if `core` currently holds a valid copy of the line containing
  // `addr` (its next Read hits locally). Used by polling loops to model the
  // "line stays cached until invalidated" behavior without charging time.
  bool HasLine(int core, Addr addr) const;

  // Drops every copy of the lines covering [addr, addr+bytes) (e.g. on
  // channel teardown). No time is charged.
  void Purge(Addr addr, std::uint64_t bytes);

  int HomeNode(Addr addr) const;

  // Diagnostics for invariant tests.
  int OwnerOf(Addr addr) const;
  std::uint64_t SharersOf(Addr addr) const;

 private:
  struct Line {
    std::uint64_t sharers = 0;  // bit per core holding a valid copy
    int owner = -1;             // core holding the line modified/owned, or -1
    int home = 0;               // home package (NUMA node)
  };

  Line& LineAt(Addr line_addr);
  const Line* FindLine(Addr line_addr) const;

  // Latency of a single-line transaction for `core` obtaining data from
  // `src_core` (cache-to-cache) or from memory when src_core < 0.
  Cycles TransferLatency(int core, int src_core, int home) const;
  // Queueing (waiting) delay for the contended resources of this transaction.
  // Cache-to-cache supply serializes per *line* (a supplier pipelines
  // distinct lines through its MSHRs but a single hot line is served one
  // requester at a time); writes and memory fetches serialize at the home
  // node''s controller.
  Cycles ContentionDelay(Addr line_addr, int core, int src_core, int home, bool is_write);
  // Records probe/data traffic for one transaction.
  void AccountTraffic(int core, int src_core, int home, bool data_from_memory);
  void AddPathDwords(int from_pkg, int to_pkg, std::uint64_t dwords);

  // One-line read/write state machine; returns latency (excluding l1 hits'
  // charge which is included). Does not advance the clock.
  Cycles ReadLine(int core, Addr line_addr, bool prefetched);
  Cycles WriteLine(int core, Addr line_addr);

  sim::Executor& exec_;
  const PlatformSpec& spec_;
  const Topology& topo_;
  PerfCounters& counters_;
  std::unordered_map<Addr, Line> lines_;
  std::unordered_map<Addr, int> region_home_;  // alloc base -> home (coarse)
  std::vector<sim::FifoResource> home_ctrl_;        // per package
  std::unordered_map<Addr, sim::FifoResource> c2c_line_;  // per hot line
  sim::FifoResource bus_;                      // FSB only
  Addr next_alloc_ = 0x1000'0000;
  std::vector<Addr> node_cursor_;              // per-node allocation cursors
};

}  // namespace mk::hw

#endif  // MK_HW_COHERENCE_H_
