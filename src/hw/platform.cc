#include "hw/platform.h"

namespace mk::hw {

PlatformSpec Intel2x4() {
  PlatformSpec s;
  s.name = "2x4-core Intel";
  s.clock_ghz = 2.66;
  s.interconnect = InterconnectKind::kFrontSideBus;
  s.packages = 2;
  s.dies_per_package = 2;
  s.cores_per_die = 2;
  s.shared_cache_per_die = true;  // shared 4MB L2 per die
  s.shared_cache_per_package = false;
  s.links = {{0, 1}};  // both packages on the shared front-side bus
  s.cost.l1_hit = 3;
  s.cost.shared_cache_rt = 88;   // URPC via shared L2: 180 cyc => ~2x88
  s.cost.cross_rt_base = 283;    // URPC non-shared: 570 cyc => ~2x283
  s.cost.cross_rt_per_hop = 0;   // bus: distance-independent
  s.cost.dram_base = 320;
  s.cost.home_occupancy = 80;
  s.cost.c2c_occupancy = 300;
  s.cost.bus_occupancy = 70;     // every cross-die transaction occupies the FSB
  s.cost.context_switch = 2400;
  s.cost.ipi_wakeup_total = 5600;
  // Table 1: LRPC 845 cycles total = syscall + activation/dispatch extra.
  s.cost.lrpc_user_path = 845 - s.cost.syscall - s.cost.dispatch;
  return s;
}

PlatformSpec Amd2x2() {
  PlatformSpec s;
  s.name = "2x2-core AMD";
  s.clock_ghz = 2.8;
  s.packages = 2;
  s.dies_per_package = 1;
  s.cores_per_die = 2;
  // Private L2s, but same-die transfers stay inside the package (system
  // request queue), modeled as the intra-package transaction cost.
  s.shared_cache_per_package = true;
  s.links = {{0, 1}};
  s.cost.shared_cache_rt = 222;  // URPC same die: 450 => ~2x222
  s.cost.cross_rt_base = 245;    // URPC one-hop: 532 => ~2x266 = base + 21
  s.cost.cross_rt_per_hop = 21;
  s.cost.home_occupancy = 85;
  s.cost.c2c_occupancy = 310;
  s.cost.lrpc_user_path = 757 - s.cost.syscall - s.cost.dispatch;  // Table 1: 757
  return s;
}

PlatformSpec Amd4x4() {
  PlatformSpec s;
  s.name = "4x4-core AMD";
  s.clock_ghz = 2.5;
  s.packages = 4;
  s.dies_per_package = 1;
  s.cores_per_die = 4;
  s.shared_cache_per_package = true;  // shared 6MB L3
  // Square topology: diagonal pairs are two hops apart.
  s.links = {{0, 1}, {1, 3}, {3, 2}, {2, 0}};
  s.cost.shared_cache_rt = 222;  // URPC shared: 448 => ~2x224
  s.cost.cross_rt_base = 265;    // one-hop 545 => ~2x272; two-hop 558 => ~2x279
  s.cost.cross_rt_per_hop = 7;
  s.cost.home_occupancy = 90;    // calibrates the Fig. 3 SHM slope
  s.cost.c2c_occupancy = 320;
  s.cost.context_switch = 2700;
  s.cost.lrpc_user_path = 1463 - s.cost.syscall - s.cost.dispatch;  // Table 1: 1463
  return s;
}

PlatformSpec Amd8x4() {
  PlatformSpec s;
  s.name = "8x4-core AMD";
  s.clock_ghz = 2.0;
  s.packages = 8;
  s.dies_per_package = 1;
  s.cores_per_die = 4;
  s.shared_cache_per_package = true;  // shared 2MB L3
  // Figure 2 interconnect: a 2x4 HyperTransport ladder with crossing middle
  // links. Rungs, rails, and two diagonals; diameter 3.
  s.links = {{0, 1}, {2, 3}, {4, 5}, {6, 7},            // rungs
             {0, 2}, {2, 4}, {4, 6},                    // one rail
             {1, 3}, {3, 5}, {5, 7},                    // other rail
             {3, 4}, {2, 5}};                           // crossing links
  s.cost.shared_cache_rt = 267;  // URPC shared: 538 => ~2x269
  s.cost.cross_rt_base = 303;    // one-hop 613 => ~2x306; two-hop 618 => ~2x309
  s.cost.cross_rt_per_hop = 3;
  s.cost.home_occupancy = 95;
  s.cost.c2c_occupancy = 330;
  s.cost.context_switch = 2800;
  s.cost.ipi_wakeup_total = 6200;
  s.cost.lrpc_user_path = 1549 - s.cost.syscall - s.cost.dispatch;  // Table 1: 1549
  return s;
}

PlatformSpec Generic(int packages, int cores_per_package) {
  PlatformSpec s;
  s.name = "generic";
  s.packages = packages;
  s.dies_per_package = 1;
  s.cores_per_die = cores_per_package;
  s.shared_cache_per_package = true;
  for (int a = 0; a < packages; ++a) {
    for (int b = a + 1; b < packages; ++b) {
      s.links.emplace_back(a, b);
    }
  }
  return s;
}

std::vector<PlatformSpec> PaperPlatforms() {
  return {Intel2x4(), Amd2x2(), Amd4x4(), Amd8x4()};
}

}  // namespace mk::hw
