// Per-core TLB model: tracks cached virtual-to-physical translations so the
// shootdown experiments can both charge invalidation costs and *verify* the
// consistency invariant (no stale translation once an unmap completes).
#ifndef MK_HW_TLB_H_
#define MK_HW_TLB_H_

#include <cstdint>
#include <unordered_map>

#include "hw/counters.h"
#include "hw/platform.h"
#include "sim/executor.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::hw {

inline constexpr std::uint64_t kPageSize = 4096;
inline constexpr std::uint64_t PageBase(std::uint64_t va) { return va & ~(kPageSize - 1); }

struct TlbEntry {
  std::uint64_t paddr = 0;
  bool writable = false;
};

class Tlb {
 public:
  Tlb(sim::Executor& exec, const CostBook& cost, CoreCounters& counters, int core)
      : exec_(exec), cost_(cost), counters_(counters), core_(core) {}

  // Fills an entry (no cost: filled as part of a charged page-table walk).
  void Insert(std::uint64_t vaddr, TlbEntry entry) { entries_[PageBase(vaddr)] = entry; }

  bool Lookup(std::uint64_t vaddr, TlbEntry* out) const {
    auto it = entries_.find(PageBase(vaddr));
    if (it == entries_.end()) {
      return false;
    }
    if (out != nullptr) {
      *out = it->second;
    }
    return true;
  }

  bool Contains(std::uint64_t vaddr) const { return entries_.count(PageBase(vaddr)) != 0; }

  // invlpg: removes one translation and charges its cost.
  sim::Task<> Invalidate(std::uint64_t vaddr) {
    entries_.erase(PageBase(vaddr));
    ++counters_.tlb_invalidations;
    trace::Emit<trace::Category::kTlb>(trace::EventId::kTlbInvalidate, exec_.now(),
                                       core_, vaddr);
    co_await exec_.Delay(cost_.tlb_invalidate);
  }

  // Invalidate without charging (used when the cost is folded into another
  // charged operation, e.g. a baseline's batched flush).
  void InvalidateNoCost(std::uint64_t vaddr) {
    entries_.erase(PageBase(vaddr));
    ++counters_.tlb_invalidations;
    trace::Emit<trace::Category::kTlb>(trace::EventId::kTlbInvalidate, exec_.now(),
                                       core_, vaddr);
  }

  sim::Task<> FlushAll() {
    const std::uint64_t dropped = entries_.size();
    entries_.clear();
    ++counters_.tlb_invalidations;
    trace::Emit<trace::Category::kTlb>(trace::EventId::kTlbFlush, exec_.now(), core_,
                                       dropped);
    co_await exec_.Delay(cost_.tlb_flush);
  }

  // Flush whose cost is folded into another charged operation (e.g. an
  // address-space switch whose constant already includes it).
  void FlushAllNoCost() {
    const std::uint64_t dropped = entries_.size();
    entries_.clear();
    ++counters_.tlb_invalidations;
    trace::Emit<trace::Category::kTlb>(trace::EventId::kTlbFlush, exec_.now(), core_,
                                       dropped);
  }

  std::size_t size() const { return entries_.size(); }

 private:
  sim::Executor& exec_;
  const CostBook& cost_;
  CoreCounters& counters_;
  int core_;
  std::unordered_map<std::uint64_t, TlbEntry> entries_;
};

}  // namespace mk::hw

#endif  // MK_HW_TLB_H_
