// Platform specifications: the four test systems of the paper (section 4.1)
// plus a generic builder.
//
// A PlatformSpec bundles the machine shape (packages, dies, cores, link
// adjacency) with a cost book of calibrated cycle latencies. Protocol *shapes*
// in the benchmarks emerge from the simulated coherence/interconnect model;
// only the base constants here are calibrated against the paper's Tables 1-3.
#ifndef MK_HW_PLATFORM_H_
#define MK_HW_PLATFORM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.h"

namespace mk::hw {

using sim::Cycles;

enum class InterconnectKind {
  kHyperTransport,  // point-to-point links, broadcast probes to all nodes
  kFrontSideBus,    // shared bus with a snoop filter (2x4 Intel)
};

// Cycle cost book. Defaults are for a generic AMD-like platform; the factory
// functions below override them per machine.
struct CostBook {
  // --- Cache / memory hierarchy ---
  Cycles l1_hit = 3;                 // local cache hit
  Cycles shared_cache_rt = 224;      // one coherence transaction via a shared cache
  Cycles cross_rt_base = 265;        // cross-package transaction, 0 extra hops
  Cycles cross_rt_per_hop = 7;       // extra cost per interconnect hop
  Cycles dram_base = 350;            // memory fetch from the local node
  Cycles dram_per_hop = 70;          // extra per hop to the home node
  Cycles store_posted = 60;          // retire a store through the store buffer
  Cycles prefetched_read = 90;       // poll-array read with the stride prefetcher

  // --- Contention service times (FIFO occupancy per transaction) ---
  Cycles home_occupancy = 90;        // home memory-controller serialization
  Cycles c2c_occupancy = 320;        // source-cache serialization for c2c supply
  Cycles bus_occupancy = 0;          // shared front-side bus (FSB platforms only)

  // --- Kernel-ish hardware costs ---
  Cycles trap = 800;                 // interrupt/trap entry+exit
  Cycles syscall = 130;              // system-call instruction round trip
  Cycles context_switch = 2600;      // address-space switch incl. TLB effects
  Cycles dispatch = 450;             // scheduler activation + dispatch upcall
  Cycles tlb_invalidate = 150;       // invlpg-style single-entry invalidate
  Cycles tlb_flush = 500;            // full TLB flush
  Cycles ipi_send = 120;             // APIC command from the sender
  Cycles ipi_wire = 300;             // fabric delivery delay (plus hops)
  Cycles ipi_wakeup_total = 6000;    // C in section 5.2: IPI + context switch
  Cycles lrpc_user_path = 600;       // activation + user-level dispatch + thread
                                     // scheduler pass on the LRPC fast path
  Cycles msg_demux = 450;            // monitor-side marshaling + event demux per
                                     // message (section 5.1 end-to-end costs)
  Cycles unmap_user_path = 5000;     // unoptimized user-level threads package
                                     // dispatch on the unmap completion path

  // --- Traffic accounting ---
  std::uint32_t cmd_dwords = 4;      // command / probe / ack packet size
  std::uint32_t data_dwords = 20;    // 64-byte cache line + header
  double cycles_per_dword = 2.0;     // link transfer rate for utilization calc
};

struct PlatformSpec {
  std::string name;
  double clock_ghz = 2.5;  // core clock, for cycle <-> wall-time conversions
  InterconnectKind interconnect = InterconnectKind::kHyperTransport;
  int packages = 1;
  int dies_per_package = 1;
  int cores_per_die = 1;
  // Whether cores on the same die / package communicate via a shared cache
  // (uses shared_cache_rt instead of a cross-package transaction).
  bool shared_cache_per_die = false;
  bool shared_cache_per_package = false;
  // Undirected package-to-package links. Empty means fully connected
  // single-hop (also used for the FSB, where the bus couples both packages).
  std::vector<std::pair<int, int>> links;
  // Heterogeneous cores (section 2.2): relative speed per core; empty means
  // homogeneous 1.0. A core with speed 0.5 takes twice as long per unit of
  // computation (kernel paths, application work). The interconnect/caches
  // are unaffected.
  std::vector<double> core_speed;
  CostBook cost;

  double SpeedOf(int core) const {
    if (core_speed.empty() || core >= static_cast<int>(core_speed.size())) {
      return 1.0;
    }
    return core_speed[static_cast<std::size_t>(core)];
  }

  int cores_per_package() const { return dies_per_package * cores_per_die; }
  int num_cores() const { return packages * cores_per_package(); }
};

// 2x4-core Intel: 2 quad-core Xeon X5355 (2 dies of 2 cores each, shared 4MB
// L2 per die), shared front-side bus with a snoop filter.
PlatformSpec Intel2x4();

// 2x2-core AMD: 2 dual-core Opteron 2220, private L2s, 2 HyperTransport links.
PlatformSpec Amd2x2();

// 4x4-core AMD: 4 quad-core Opteron 8380 in a square HT topology, shared 6MB
// L3 per package.
PlatformSpec Amd4x4();

// 8x4-core AMD: 8 quad-core Opteron 8350, interconnect of Figure 2, shared
// 2MB L3 per package.
PlatformSpec Amd8x4();

// Generic homogeneous machine for tests: `packages` fully-connected nodes of
// `cores_per_package` cores each, with a shared cache per package.
PlatformSpec Generic(int packages, int cores_per_package);

// All four paper platforms, in the order used by Tables 1 and 2.
std::vector<PlatformSpec> PaperPlatforms();

}  // namespace mk::hw

#endif  // MK_HW_PLATFORM_H_
