// Hardware performance counters: cache events per core and interconnect
// traffic per directed link (in 32-bit dwords, as the paper's Table 4).
#ifndef MK_HW_COUNTERS_H_
#define MK_HW_COUNTERS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mk::hw {

// The single source of truth for CoreCounters' fields. operator-, Total, and
// the field visitors all expand from this list, so adding a counter means
// adding exactly one line here.
#define MK_CORE_COUNTER_FIELDS(V) \
  V(loads)                        \
  V(stores)                       \
  V(cache_hits)                   \
  V(cache_misses)                 \
  V(c2c_transfers)                \
  V(dram_fetches)                 \
  V(invalidations_recv)           \
  V(tlb_invalidations)            \
  V(tlb_misses)                   \
  V(traps)                        \
  V(ipis_sent)                    \
  V(ipis_received)

struct CoreCounters {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;   // coherence misses (invalidation/first touch)
  std::uint64_t c2c_transfers = 0;  // misses satisfied cache-to-cache
  std::uint64_t dram_fetches = 0;   // misses satisfied from memory
  std::uint64_t invalidations_recv = 0;
  std::uint64_t tlb_invalidations = 0;
  std::uint64_t tlb_misses = 0;
  std::uint64_t traps = 0;
  std::uint64_t ipis_sent = 0;
  std::uint64_t ipis_received = 0;

  // Invokes fn(name, value) for every counter field.
  template <typename Fn>
  void ForEachField(Fn&& fn) const {
#define MK_VISIT(field) fn(#field, field);
    MK_CORE_COUNTER_FIELDS(MK_VISIT)
#undef MK_VISIT
  }

  // Invokes fn(this_field&, other_field) for every pair of counter fields.
  template <typename Fn>
  void ZipFields(const CoreCounters& other, Fn&& fn) {
#define MK_VISIT(field) fn(field, other.field);
    MK_CORE_COUNTER_FIELDS(MK_VISIT)
#undef MK_VISIT
  }

  CoreCounters operator-(const CoreCounters& o) const {
    CoreCounters r = *this;
    r.ZipFields(o, [](std::uint64_t& mine, std::uint64_t theirs) { mine -= theirs; });
    return r;
  }
};

namespace internal {
#define MK_VISIT(field) +1
inline constexpr std::size_t kCoreCounterFields = MK_CORE_COUNTER_FIELDS(MK_VISIT);
#undef MK_VISIT
}  // namespace internal

// A field added to the struct but not the X-macro (or vice versa) trips this.
static_assert(internal::kCoreCounterFields * sizeof(std::uint64_t) == sizeof(CoreCounters),
              "MK_CORE_COUNTER_FIELDS is out of sync with CoreCounters");

class PerfCounters {
 public:
  PerfCounters(int cores, int packages)
      : cores_(cores, CoreCounters{}),
        link_dwords_(packages, std::vector<std::uint64_t>(packages, 0)) {}

  CoreCounters& core(int c) { return cores_[c]; }
  const CoreCounters& core(int c) const { return cores_[c]; }

  void AddLinkDwords(int from_pkg, int to_pkg, std::uint64_t dwords) {
    link_dwords_[from_pkg][to_pkg] += dwords;
  }
  std::uint64_t link_dwords(int from_pkg, int to_pkg) const {
    return link_dwords_[from_pkg][to_pkg];
  }

  CoreCounters Total() const {
    CoreCounters t;
    for (const auto& c : cores_) {
      t.ZipFields(c, [](std::uint64_t& mine, std::uint64_t theirs) { mine += theirs; });
    }
    return t;
  }

  void Reset() {
    for (auto& c : cores_) {
      c = CoreCounters{};
    }
    for (auto& row : link_dwords_) {
      for (auto& v : row) {
        v = 0;
      }
    }
  }

 private:
  std::vector<CoreCounters> cores_;
  std::vector<std::vector<std::uint64_t>> link_dwords_;
};

}  // namespace mk::hw

#endif  // MK_HW_COUNTERS_H_
