// Hardware performance counters: cache events per core and interconnect
// traffic per directed link (in 32-bit dwords, as the paper's Table 4).
#ifndef MK_HW_COUNTERS_H_
#define MK_HW_COUNTERS_H_

#include <cstdint>
#include <vector>

namespace mk::hw {

struct CoreCounters {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;   // coherence misses (invalidation/first touch)
  std::uint64_t c2c_transfers = 0;  // misses satisfied cache-to-cache
  std::uint64_t dram_fetches = 0;   // misses satisfied from memory
  std::uint64_t invalidations_recv = 0;
  std::uint64_t tlb_invalidations = 0;
  std::uint64_t tlb_misses = 0;
  std::uint64_t traps = 0;
  std::uint64_t ipis_sent = 0;
  std::uint64_t ipis_received = 0;

  CoreCounters operator-(const CoreCounters& o) const {
    CoreCounters r = *this;
    r.loads -= o.loads;
    r.stores -= o.stores;
    r.cache_hits -= o.cache_hits;
    r.cache_misses -= o.cache_misses;
    r.c2c_transfers -= o.c2c_transfers;
    r.dram_fetches -= o.dram_fetches;
    r.invalidations_recv -= o.invalidations_recv;
    r.tlb_invalidations -= o.tlb_invalidations;
    r.tlb_misses -= o.tlb_misses;
    r.traps -= o.traps;
    r.ipis_sent -= o.ipis_sent;
    r.ipis_received -= o.ipis_received;
    return r;
  }
};

class PerfCounters {
 public:
  PerfCounters(int cores, int packages)
      : cores_(cores, CoreCounters{}),
        link_dwords_(packages, std::vector<std::uint64_t>(packages, 0)) {}

  CoreCounters& core(int c) { return cores_[c]; }
  const CoreCounters& core(int c) const { return cores_[c]; }

  void AddLinkDwords(int from_pkg, int to_pkg, std::uint64_t dwords) {
    link_dwords_[from_pkg][to_pkg] += dwords;
  }
  std::uint64_t link_dwords(int from_pkg, int to_pkg) const {
    return link_dwords_[from_pkg][to_pkg];
  }

  CoreCounters Total() const {
    CoreCounters t;
    for (const auto& c : cores_) {
      t.loads += c.loads;
      t.stores += c.stores;
      t.cache_hits += c.cache_hits;
      t.cache_misses += c.cache_misses;
      t.c2c_transfers += c.c2c_transfers;
      t.dram_fetches += c.dram_fetches;
      t.invalidations_recv += c.invalidations_recv;
      t.tlb_invalidations += c.tlb_invalidations;
      t.tlb_misses += c.tlb_misses;
      t.traps += c.traps;
      t.ipis_sent += c.ipis_sent;
      t.ipis_received += c.ipis_received;
    }
    return t;
  }

  void Reset() {
    for (auto& c : cores_) {
      c = CoreCounters{};
    }
    for (auto& row : link_dwords_) {
      for (auto& v : row) {
        v = 0;
      }
    }
  }

 private:
  std::vector<CoreCounters> cores_;
  std::vector<std::vector<std::uint64_t>> link_dwords_;
};

}  // namespace mk::hw

#endif  // MK_HW_COUNTERS_H_
