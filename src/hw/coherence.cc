#include "hw/coherence.h"

#include <cassert>
#include <stdexcept>

#include "fault/fault.h"

namespace mk::hw {
namespace {

constexpr std::uint64_t Bit(int core) { return std::uint64_t{1} << core; }

// Allocation regions are striped per NUMA node so the home node can be
// recovered from the address alone.
constexpr Addr kNodeRegionBase = 0x1000'0000;
constexpr Addr kNodeRegionSize = Addr{1} << 40;

}  // namespace

CoherentMemory::CoherentMemory(sim::Executor& exec, const PlatformSpec& spec,
                               const Topology& topo, PerfCounters& counters)
    : exec_(exec), spec_(spec), topo_(topo), counters_(counters),
      home_ctrl_(topo.num_packages()) {
  if (topo.num_cores() > 64) {
    throw std::invalid_argument("CoherentMemory supports at most 64 cores");
  }
  node_cursor_.resize(topo.num_packages());
  for (int n = 0; n < topo.num_packages(); ++n) {
    node_cursor_[n] = kNodeRegionBase + static_cast<Addr>(n) * kNodeRegionSize;
  }
}

Addr CoherentMemory::AllocLines(int node, std::uint64_t lines) {
  if (node < 0 || node >= topo_.num_packages()) {
    throw std::invalid_argument("AllocLines: bad node");
  }
  Addr base = node_cursor_[node];
  node_cursor_[node] += lines * sim::kCacheLineBytes;
  return base;
}

int CoherentMemory::HomeNode(Addr addr) const {
  if (addr < kNodeRegionBase) {
    return 0;
  }
  auto node = static_cast<int>((addr - kNodeRegionBase) / kNodeRegionSize);
  return node < topo_.num_packages() ? node : 0;
}

CoherentMemory::Line& CoherentMemory::LineAt(Addr line_addr) {
  auto [it, inserted] = lines_.try_emplace(line_addr);
  if (inserted) {
    it->second.home = HomeNode(line_addr);
  }
  return it->second;
}

const CoherentMemory::Line* CoherentMemory::FindLine(Addr line_addr) const {
  auto it = lines_.find(line_addr);
  return it == lines_.end() ? nullptr : &it->second;
}

bool CoherentMemory::HasLine(int core, Addr addr) const {
  const Line* l = FindLine(sim::LineBase(addr));
  return l != nullptr && (l->sharers & Bit(core)) != 0;
}

void CoherentMemory::Purge(Addr addr, std::uint64_t bytes) {
  Addr first = sim::LineBase(addr);
  for (std::uint64_t i = 0; i < sim::LinesCovering(addr, bytes); ++i) {
    lines_.erase(first + i * sim::kCacheLineBytes);
  }
}

int CoherentMemory::OwnerOf(Addr addr) const {
  const Line* l = FindLine(sim::LineBase(addr));
  return l ? l->owner : -1;
}

std::uint64_t CoherentMemory::SharersOf(Addr addr) const {
  const Line* l = FindLine(sim::LineBase(addr));
  return l ? l->sharers : 0;
}

Cycles CoherentMemory::TransferLatency(int core, int src_core, int home) const {
  const CostBook& c = spec_.cost;
  // An installed fault::Injector can spike the interconnect: every transfer
  // that leaves the local package pays the extra latency while the spike is
  // armed.
  auto link_extra = [&](int hops) -> Cycles {
    if (hops <= 0) {
      return 0;
    }
    fault::Injector* inj = fault::Injector::active();
    if (inj == nullptr) {
      return 0;
    }
    Cycles extra = inj->LinkExtra(exec_.now());
    if (extra > 0) {
      trace::Emit<trace::Category::kFault>(trace::EventId::kFaultLinkSpike, exec_.now(),
                                           core, extra);
    }
    return extra;
  };
  if (src_core >= 0) {
    if (topo_.SharesCache(core, src_core)) {
      return c.shared_cache_rt;
    }
    int hops = topo_.HopsBetweenCores(core, src_core);
    return c.cross_rt_base + c.cross_rt_per_hop * static_cast<Cycles>(hops) +
           link_extra(hops);
  }
  int hops = topo_.Hops(topo_.PackageOf(core), home);
  return c.dram_base + c.dram_per_hop * static_cast<Cycles>(hops) + link_extra(hops);
}

Cycles CoherentMemory::ContentionDelay(Addr line_addr, int core, int src_core, int home,
                                       bool is_write) {
  const CostBook& c = spec_.cost;
  const Cycles now = exec_.now();
  Cycles wait = 0;
  auto reserve = [&](sim::FifoResource& r, Cycles service) {
    Cycles done = r.ReserveAt(now, service);
    Cycles w = done - now - service;  // pure queueing, service is in the latency
    if (w > wait) {
      wait = w;
    }
  };
  const bool cross_c2c =
      src_core >= 0 && src_core != core && !topo_.SharesCache(core, src_core);
  if (cross_c2c && !is_write) {
    // Read supply of a hot line: one owner's cache serves every requester,
    // one at a time (the Figure 6 broadcast pathology). Ownership-migrating
    // writes instead pipeline through successive owners' caches, so their
    // serialization point is the home-node ordering below.
    reserve(c2c_line_[line_addr], c.c2c_occupancy);
  }
  if (is_write || src_core < 0) {
    // Writes order at the home node; memory fetches occupy its controller.
    reserve(home_ctrl_[home], c.home_occupancy);
  }
  if (spec_.interconnect == InterconnectKind::kFrontSideBus && c.bus_occupancy > 0) {
    const bool crosses_bus =
        cross_c2c || (src_core < 0 && topo_.PackageOf(core) != home) || is_write;
    if (crosses_bus) {
      reserve(bus_, c.bus_occupancy);
    }
  }
  return wait;
}

void CoherentMemory::AddPathDwords(int from_pkg, int to_pkg, std::uint64_t dwords) {
  while (from_pkg != to_pkg) {
    int next = topo_.NextHop(from_pkg, to_pkg);
    counters_.AddLinkDwords(from_pkg, next, dwords);
    from_pkg = next;
  }
}

void CoherentMemory::AccountTraffic(int core, int src_core, int home, bool data_from_memory) {
  const CostBook& c = spec_.cost;
  const int req_pkg = topo_.PackageOf(core);
  // Request command to the home node.
  AddPathDwords(req_pkg, home, c.cmd_dwords);
  if (spec_.interconnect == InterconnectKind::kHyperTransport) {
    // HT broadcasts probes to every node; each responds.
    for (int p = 0; p < topo_.num_packages(); ++p) {
      if (p == req_pkg) {
        continue;
      }
      AddPathDwords(home, p, c.cmd_dwords);
      AddPathDwords(p, req_pkg, c.cmd_dwords);
    }
  } else if (src_core >= 0) {
    // Snoop filter: probe only the package actually holding the line.
    int p = topo_.PackageOf(src_core);
    if (p != req_pkg) {
      AddPathDwords(home, p, c.cmd_dwords);
      AddPathDwords(p, req_pkg, c.cmd_dwords);
    }
  }
  // Data payload from its source to the requester.
  int data_pkg = data_from_memory ? home : topo_.PackageOf(src_core);
  AddPathDwords(data_pkg, req_pkg, c.data_dwords);
}

Cycles CoherentMemory::ReadLine(int core, Addr line_addr, bool prefetched) {
  const CostBook& c = spec_.cost;
  Line& l = LineAt(line_addr);
  CoreCounters& cc = counters_.core(core);
  ++cc.loads;
  if ((l.sharers & Bit(core)) != 0) {
    ++cc.cache_hits;
    return c.l1_hit;
  }
  ++cc.cache_misses;
  int src = -1;
  if (l.owner >= 0 && l.owner != core) {
    src = l.owner;
  } else if (l.sharers != 0) {
    // Clean copy supplied by the nearest sharer.
    int best = -1;
    int best_hops = 1 << 20;
    for (int s = 0; s < topo_.num_cores(); ++s) {
      if ((l.sharers & Bit(s)) == 0) {
        continue;
      }
      int h = topo_.SharesCache(core, s) ? -1 : topo_.HopsBetweenCores(core, s);
      if (h < best_hops) {
        best_hops = h;
        best = s;
      }
    }
    src = best;
  }
  const bool from_memory = src < 0;
  if (from_memory) {
    ++cc.dram_fetches;
  } else {
    ++cc.c2c_transfers;
  }
  Cycles lat = prefetched ? c.prefetched_read : TransferLatency(core, src, l.home);
  lat += ContentionDelay(line_addr, core, src, l.home, /*is_write=*/false);
  AccountTraffic(core, src, l.home, from_memory);
  l.sharers |= Bit(core);
  trace::Emit<trace::Category::kCoherence>(trace::EventId::kCohMiss, exec_.now(), core,
                                           line_addr, lat);
  if (!from_memory) {
    trace::Emit<trace::Category::kCoherence>(trace::EventId::kCohC2C, exec_.now(), core,
                                             line_addr, static_cast<std::uint64_t>(src));
  }
  return lat;
}

Cycles CoherentMemory::WriteLine(int core, Addr line_addr) {
  const CostBook& c = spec_.cost;
  Line& l = LineAt(line_addr);
  CoreCounters& cc = counters_.core(core);
  ++cc.stores;
  if (l.owner == core && l.sharers == Bit(core)) {
    ++cc.cache_hits;
    return c.l1_hit;
  }
  ++cc.cache_misses;
  const bool need_data = (l.sharers & Bit(core)) == 0;
  int src = -1;
  if (need_data) {
    if (l.owner >= 0 && l.owner != core) {
      src = l.owner;
    } else if (l.sharers != 0) {
      for (int s = 0; s < topo_.num_cores(); ++s) {
        if ((l.sharers & Bit(s)) != 0 && s != core) {
          src = s;
          break;
        }
      }
    }
  }
  const bool from_memory = need_data && src < 0;
  Cycles fetch_lat = 0;
  if (need_data) {
    fetch_lat = TransferLatency(core, src, l.home);
    if (from_memory) {
      ++cc.dram_fetches;
    } else {
      ++cc.c2c_transfers;
    }
  }
  // Invalidate every other copy; probes go out in parallel, so the protocol
  // latency is bounded by the farthest sharer — plus, on a broadcast-probe
  // interconnect, a serial component for collecting the probe responses of a
  // widely-shared line at the ordering point.
  Cycles inval_lat = 0;
  int other_sharers = 0;
  for (int s = 0; s < topo_.num_cores(); ++s) {
    if (s == core || (l.sharers & Bit(s)) == 0) {
      continue;
    }
    ++other_sharers;
    ++counters_.core(s).invalidations_recv;
    Cycles rt = TransferLatency(core, s, l.home);
    if (rt > inval_lat) {
      inval_lat = rt;
    }
  }
  if (spec_.interconnect == InterconnectKind::kHyperTransport && other_sharers > 1) {
    inval_lat += 70 * static_cast<Cycles>(other_sharers - 1);
  }
  Cycles lat = fetch_lat > inval_lat ? fetch_lat : inval_lat;
  if (lat == 0) {
    // Upgrade of a solitary shared copy: half a round trip to the ordering
    // point.
    lat = c.cross_rt_base / 2;
  }
  lat += ContentionDelay(line_addr, core, src, l.home, /*is_write=*/true);
  if (need_data || l.sharers != Bit(core) || l.owner != core) {
    AccountTraffic(core, src, l.home, from_memory);
  }
  l.sharers = Bit(core);
  l.owner = core;
  trace::Emit<trace::Category::kCoherence>(trace::EventId::kCohMiss, exec_.now(), core,
                                           line_addr, lat);
  if (need_data && !from_memory) {
    trace::Emit<trace::Category::kCoherence>(trace::EventId::kCohC2C, exec_.now(), core,
                                             line_addr, static_cast<std::uint64_t>(src));
  }
  return lat;
}

// Multi-line accesses process one line at a time: each line's state change,
// contention reservation, and latency happen at that line's issue time, so
// concurrent cores interleave between lines and a burst of lines does not
// self-queue at a single timestamp.
Task<Cycles> CoherentMemory::Read(int core, Addr addr, std::uint64_t bytes) {
  Cycles total = 0;
  Addr first = sim::LineBase(addr);
  for (std::uint64_t i = 0; i < sim::LinesCovering(addr, bytes); ++i) {
    Cycles lat = ReadLine(core, first + i * sim::kCacheLineBytes, /*prefetched=*/false);
    total += lat;
    co_await exec_.Delay(lat);
  }
  co_return total;
}

Task<Cycles> CoherentMemory::ReadPrefetched(int core, Addr addr, std::uint64_t bytes) {
  Cycles total = 0;
  Addr first = sim::LineBase(addr);
  for (std::uint64_t i = 0; i < sim::LinesCovering(addr, bytes); ++i) {
    Cycles lat = ReadLine(core, first + i * sim::kCacheLineBytes, /*prefetched=*/true);
    total += lat;
    co_await exec_.Delay(lat);
  }
  co_return total;
}

Task<Cycles> CoherentMemory::Write(int core, Addr addr, std::uint64_t bytes) {
  Cycles total = 0;
  Addr first = sim::LineBase(addr);
  for (std::uint64_t i = 0; i < sim::LinesCovering(addr, bytes); ++i) {
    Cycles lat = WriteLine(core, first + i * sim::kCacheLineBytes);
    total += lat;
    co_await exec_.Delay(lat);
  }
  co_return total;
}

Task<Cycles> CoherentMemory::WritePosted(int core, Addr addr, std::uint64_t bytes) {
  // State, traffic and contention are accounted as for a blocking write, but
  // the issuing core only pays the store-buffer retire cost per line.
  Addr first = sim::LineBase(addr);
  std::uint64_t n = sim::LinesCovering(addr, bytes);
  Cycles total = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    (void)WriteLine(core, first + i * sim::kCacheLineBytes);
    total += spec_.cost.store_posted;
    co_await exec_.Delay(spec_.cost.store_posted);
  }
  co_return total;
}

}  // namespace mk::hw
