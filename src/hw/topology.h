// Interconnect topology: core placement and package-to-package routing.
#ifndef MK_HW_TOPOLOGY_H_
#define MK_HW_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "hw/platform.h"

namespace mk::hw {

// Immutable description of the machine shape, derived from a PlatformSpec.
// Cores are numbered package-major: core c lives in package c / cores_per_pkg.
class Topology {
 public:
  explicit Topology(const PlatformSpec& spec);

  int num_cores() const { return num_cores_; }
  int num_packages() const { return packages_; }
  int cores_per_package() const { return cores_per_package_; }

  int PackageOf(int core) const { return core / cores_per_package_; }
  int DieOf(int core) const {
    return (core % cores_per_package_) / cores_per_die_;
  }

  // True if the two cores communicate through a shared cache (or an on-die
  // path) rather than across the interconnect.
  bool SharesCache(int a, int b) const;

  // Interconnect hops between two packages (0 for the same package). On the
  // front-side bus every cross-package pair is one "hop" (one bus transfer).
  int Hops(int pkg_a, int pkg_b) const { return hops_[pkg_a][pkg_b]; }
  int HopsBetweenCores(int a, int b) const { return Hops(PackageOf(a), PackageOf(b)); }

  // Longest shortest-path distance from `pkg` to any other package. The
  // latency of a broadcast-probe transaction is bounded by this.
  int Eccentricity(int pkg) const { return eccentricity_[pkg]; }
  int Diameter() const { return diameter_; }

  // First package on a shortest path from `from` towards `to` (== `to` if
  // adjacent or equal). Used to route traffic accounting over links.
  int NextHop(int from, int to) const { return next_hop_[from][to]; }

  // All directed links (a, b) with a != b that are direct neighbors.
  const std::vector<std::pair<int, int>>& links() const { return links_; }

  // First core of each package, in package order (multicast aggregation).
  std::vector<int> PackageLeaders() const;
  // Cores belonging to `pkg`.
  std::vector<int> CoresOf(int pkg) const;

 private:
  int packages_;
  int cores_per_package_;
  int cores_per_die_;
  int num_cores_;
  bool shared_cache_per_die_;
  bool shared_cache_per_package_;
  std::vector<std::pair<int, int>> links_;
  std::vector<std::vector<int>> hops_;
  std::vector<std::vector<int>> next_hop_;
  std::vector<int> eccentricity_;
  int diameter_ = 0;
};

}  // namespace mk::hw

#endif  // MK_HW_TOPOLOGY_H_
