#include "hw/machine.h"

#include <atomic>

#include "fault/fault.h"

namespace mk::hw {
namespace {

// Machines are constructed in setup code (before any engine run), so this is
// deterministic program order; atomic only so a stray runtime construction
// cannot tear. Ids feed Machine::NextChannelSerial's flow namespace.
std::atomic<int> g_next_machine_id{0};

}  // namespace

sim::Task<> IpiFabric::Send(int from, int to, int vector, std::uint64_t payload) {
  ++counters_.core(from).ipis_sent;
  const CostBook& c = spec_.cost;
  int hops = topo_.Hops(topo_.PackageOf(from), topo_.PackageOf(to));
  sim::Cycles wire = c.ipi_wire + c.cross_rt_per_hop * static_cast<sim::Cycles>(hops);
  // Flow serial advances unconditionally so runs are identical with tracing
  // on or off.
  const std::uint64_t flow = trace::kFlowIpi | ++next_flow_;
  if (fault::Injector* inj = fault::Injector::active()) {
    if (inj->ShouldDropIpi(exec_.now(), from, to)) {
      // Dropped in the fabric: the sender still pays the APIC command cost,
      // the destination never hears about it.
      trace::Emit<trace::Category::kFault>(trace::EventId::kFaultIpiDrop, exec_.now(),
                                           from, static_cast<std::uint64_t>(to),
                                           static_cast<std::uint64_t>(vector));
      co_await exec_.Delay(c.ipi_send);
      co_return;
    }
    if (sim::Cycles extra = inj->IpiExtraDelay(exec_.now(), from, to); extra > 0) {
      trace::Emit<trace::Category::kFault>(trace::EventId::kFaultIpiDelay, exec_.now(),
                                           from, static_cast<std::uint64_t>(to), extra);
      wire += extra;
    }
  }
  trace::Emit<trace::Category::kIpi>(trace::EventId::kIpiSend, exec_.now(), from,
                                     static_cast<std::uint64_t>(to),
                                     static_cast<std::uint64_t>(vector), flow,
                                     trace::Phase::kFlowOut);
  auto arrive = [this, from, to, vector, payload, flow] {
    // A fail-stop core takes no interrupts: the IPI reaches a dead APIC.
    if (fault::Injector* inj = fault::Injector::active();
        inj != nullptr && inj->CoreHalted(to, exec_.now())) {
      return;
    }
    ++counters_.core(to).ipis_received;
    trace::Emit<trace::Category::kIpi>(trace::EventId::kIpiRecv, exec_.now(), to,
                                       static_cast<std::uint64_t>(from),
                                       static_cast<std::uint64_t>(vector), flow,
                                       trace::Phase::kFlowIn);
    if (handlers_[to]) {
      handlers_[to](vector, payload);
    }
  };
  // Per-IPI arrival closure: must stay within the inline callback budget so
  // interrupt fan-outs (e.g. multicast shootdowns) never heap-allocate.
  static_assert(sizeof(arrive) <= sim::InlineCallback::kInlineBytes);
  exec_.CallAt(exec_.now() + c.ipi_send + wire, std::move(arrive));
  co_await exec_.Delay(c.ipi_send);
}

Machine::Machine(sim::Executor& exec, PlatformSpec spec)
    : exec_(exec),
      machine_id_(g_next_machine_id.fetch_add(1, std::memory_order_relaxed)),
      spec_(std::move(spec)),
      topo_(spec_),
      counters_(topo_.num_cores(), topo_.num_packages()),
      mem_(exec_, spec_, topo_, counters_),
      ipi_(exec_, spec_, topo_, counters_),
      core_busy_(topo_.num_cores()) {
  tlbs_.reserve(topo_.num_cores());
  for (int c = 0; c < topo_.num_cores(); ++c) {
    tlbs_.push_back(std::make_unique<Tlb>(exec_, spec_.cost, counters_.core(c), c));
  }
}

sim::Task<> Machine::Compute(int core, sim::Cycles cycles) {
  // Heterogeneous cores: a slower core takes proportionally longer for the
  // same work (section 2.2). Speeds default to 1.0.
  double speed = spec_.SpeedOf(core);
  auto scaled = static_cast<sim::Cycles>(static_cast<double>(cycles) / speed);
  sim::Cycles done = core_busy_[core].ReserveAt(exec_.now(), scaled);
  co_await exec_.Delay(done - exec_.now());
}

sim::Task<> Machine::Trap(int core) {
  ++counters_.core(core).traps;
  const sim::Cycles start = exec_.now();
  co_await Compute(core, spec_.cost.trap);
  trace::EmitSpan<trace::Category::kKernel>(trace::EventId::kTrap, start, exec_.now(),
                                            core);
}

sim::Task<> Machine::Syscall(int core) {
  const sim::Cycles start = exec_.now();
  co_await Compute(core, spec_.cost.syscall);
  trace::EmitSpan<trace::Category::kKernel>(trace::EventId::kSyscall, start, exec_.now(),
                                            core);
}

}  // namespace mk::hw
