// Deterministic pseudo-random generation for workloads and arrival processes.
//
// xoshiro256** seeded via SplitMix64; independent streams per component keep
// experiments reproducible regardless of event interleaving.
//
// Stream-handout rule: a stream's seed must be a pure function of *what the
// stream is for* — (base seed, domain, purpose) — never of when it was
// created. A creation-order counter would silently entangle every consumer:
// reordering two Rng constructions (or running domains on different host
// threads) would reshuffle all downstream draws. DeriveStreamSeed and
// StreamPool encode the keyed scheme; tests/random_stream_test.cc pins the
// order-independence property.
#ifndef MK_SIM_RANDOM_H_
#define MK_SIM_RANDOM_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>

namespace mk::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) via Lemire's multiply-shift (bound > 0).
  std::uint64_t Below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Exponentially distributed value with the given mean (Poisson interarrival).
  double Exponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

  bool Chance(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  std::array<std::uint64_t, 4> state_{};
};

// Derives an independent stream seed from (base, domain, purpose) — a pure
// function of the key, with no hidden state, so two streams with the same
// key always see the same draws no matter which was created first or which
// host thread asks. Domain 0 / purpose 0 yields `base` unchanged, keeping
// every pre-parallel-engine seeding byte-identical.
inline std::uint64_t DeriveStreamSeed(std::uint64_t base, int domain,
                                      std::uint64_t purpose = 0) {
  if (domain == 0 && purpose == 0) {
    return base;
  }
  // SplitMix64 finalizer over the packed key: cheap, and one bit of key
  // change avalanches the whole seed (adjacent domains get unrelated
  // streams rather than shifted copies).
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(domain) + 1) +
                    0xbf58476d1ce4e5b9ULL * (purpose + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Keyed stream registry: hands out one Rng per (domain, purpose), created
// lazily on first request but seeded purely from the key. Request order,
// interleaving, and host-thread placement cannot change any stream's
// sequence. Not itself thread-safe — give each domain its own pool, or use
// it from setup code only.
class StreamPool {
 public:
  explicit StreamPool(std::uint64_t base_seed) : base_(base_seed) {}

  Rng& Get(int domain, std::uint64_t purpose = 0) {
    const auto key = std::make_pair(domain, purpose);
    auto it = streams_.find(key);
    if (it == streams_.end()) {
      it = streams_.emplace(key, Rng(DeriveStreamSeed(base_, domain, purpose))).first;
    }
    return it->second;
  }

  std::uint64_t base_seed() const { return base_; }
  std::size_t size() const { return streams_.size(); }

 private:
  std::uint64_t base_;
  std::map<std::pair<int, std::uint64_t>, Rng> streams_;
};

}  // namespace mk::sim

#endif  // MK_SIM_RANDOM_H_
