// Statistics accumulators used by the benchmark harnesses.
#ifndef MK_SIM_STATS_H_
#define MK_SIM_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace mk::sim {

// Welford online mean / standard deviation.
class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  void Reset() { *this = RunningStat(); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width linear histogram with dedicated underflow and overflow
// buckets; used for latency distributions in the messaging experiments.
// Layout of counts(): [underflow, bucket 0 .. bucket N-1, overflow], so a
// sample below `lo` can never masquerade as a legitimate [lo, lo+width)
// sample and skew Percentile.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets + 2, 0) {}

  void Add(double x) {
    stat_.Add(x);
    if (x < lo_) {
      ++counts_.front();  // underflow bucket
      return;
    }
    auto idx = static_cast<std::size_t>((x - lo_) / width_) + 1;
    if (idx >= counts_.size() - 1) {
      ++counts_.back();  // overflow bucket
    } else {
      ++counts_[idx];
    }
  }

  double Percentile(double p) const {
    std::uint64_t total = stat_.count();
    if (total == 0) {
      return 0.0;
    }
    auto target = static_cast<std::uint64_t>(p * static_cast<double>(total));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > target) {
        // Bucket i spans [lo + (i-1)*width, lo + i*width); the underflow
        // bucket (i == 0) reports the range floor.
        return i == 0 ? lo_ : lo_ + width_ * static_cast<double>(i - 1);
      }
    }
    return lo_ + width_ * static_cast<double>(counts_.size() - 2);
  }

  std::uint64_t underflow() const { return counts_.front(); }
  std::uint64_t overflow() const { return counts_.back(); }

  const RunningStat& stat() const { return stat_; }
  const std::vector<std::uint64_t>& buckets() const { return counts_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  RunningStat stat_;
};

}  // namespace mk::sim

#endif  // MK_SIM_STATS_H_
