// Deterministic parallel discrete-event engine: conservative lookahead over
// host-thread domains.
//
// The single-threaded Executor stays the unit of sequential execution; this
// engine composes N of them ("domains") and advances them in
// barrier-synchronized *epochs* so the composition can run on multiple host
// threads while remaining bit-identical to its single-threaded run:
//
//   * Partitioning rule — a domain owns everything that shares mutable state
//     synchronously: one hw::Machine (its coherence model, counters, TLBs,
//     IPI fabric) and all components built on it. Cross-domain interaction is
//     only allowed through registered *links*, whose latency models the
//     slowest-coupled fabric between the partitions (an inter-machine wire, a
//     datacenter link).
//
//   * Conservative lookahead — the epoch width is the minimum registered
//     cross-domain link latency L. An event executing at time u can only
//     affect another domain at u + L or later, so every domain may freely
//     dispatch all events in [T, T + L) without observing its peers: nothing
//     a peer does in that window can reach it before T + L.
//
//   * Epochs — each epoch [T, T+L) runs every domain's Executor::RunUntil in
//     parallel (T is fast-forwarded over globally idle gaps). Cross-domain
//     events are not pushed into the destination's queue directly (that
//     would race and make tie order depend on thread scheduling); they are
//     buffered in per-(src,dst) single-writer mailboxes and drained at the
//     epoch barrier in fixed (source domain id, post order) sequence, by the
//     destination's owning thread. The merge order is therefore a pure
//     function of simulated time, never of host scheduling.
//
//   * Thread mapping — domains are assigned round-robin to `threads` host
//     workers. The assignment affects wall-clock only: with 1 thread the
//     same epoch/drain sequence runs inline on the caller, so
//     `threads=N` is bit-identical to `threads=1` by construction. A
//     single-domain engine short-circuits to Executor::Run() and is
//     byte-identical to not using the engine at all.
//
// Determinism guardrails: multi-threaded runs enable per-domain owner-thread
// enforcement (a push into a foreign domain's queue aborts), and Post()
// aborts on a conservative-lookahead violation (delivery earlier than
// src.now() + link latency).
#ifndef MK_SIM_PARALLEL_H_
#define MK_SIM_PARALLEL_H_

#include <barrier>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "sim/domain.h"
#include "sim/executor.h"
#include "sim/inline_callback.h"
#include "sim/types.h"

namespace mk::sim {

class ParallelEngine {
 public:
  struct Options {
    int domains = 1;
    int threads = 1;  // host workers; clamped to [1, domains]
    // Epoch width when no links are registered (independent domains have
    // unbounded lookahead; wider epochs amortize barrier crossings).
    Cycles default_lookahead = 100'000;
    // Per-domain trace-track offset stride: domain d's trace records land on
    // tracks [d*stride, (d+1)*stride), keeping every ring single-writer.
    // Must exceed the widest domain's core count (and kExecutorTrack).
    std::uint16_t track_stride = 512;
  };

  explicit ParallelEngine(Options opts);
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;
  ~ParallelEngine();

  int num_domains() const { return static_cast<int>(domains_.size()); }
  int threads() const { return threads_; }
  Cycles lookahead() const { return lookahead_; }
  Executor& domain(int d) { return domains_[static_cast<std::size_t>(d)]->exec; }

  // Declares a directed cross-domain link with the given latency (cycles).
  // The engine's lookahead is min over all registered link latencies (capped
  // by Options::default_lookahead). Must be called before Run().
  void Link(int src, int dst, Cycles latency);
  // Registered latency, or 0 if none.
  Cycles link_latency(int src, int dst) const {
    return latency_[static_cast<std::size_t>(src) * domains_.size() +
                    static_cast<std::size_t>(dst)];
  }

  // Posts `cb` to run in domain `dst` at absolute time `at`. During a run it
  // must be called from domain `src`'s event context (its owning thread) and
  // obeys the conservative bound at >= domain(src).now() + link latency;
  // violations abort. Before Run() it enqueues directly (setup path).
  void Post(int src, int dst, Cycles at, InlineCallback cb);

  // Post after exactly the link's latency from src's current time — the
  // common "send a message down the wire" shape.
  void Send(int src, int dst, InlineCallback cb);

  // Runs epochs until every domain drains and no cross-domain messages are
  // pending. Returns the maximum final simulated time across domains.
  Cycles Run();

  // --- Diagnostics ---
  std::uint64_t epochs() const { return epochs_; }
  std::uint64_t cross_messages() const;   // total drained into all domains
  std::uint64_t events_dispatched() const;  // sum over domains
  Cycles max_now() const;

 private:
  struct CrossMsg {
    Cycles at;
    InlineCallback cb;
  };

  struct DomainState {
    explicit DomainState(int num_domains) : inbox(static_cast<std::size_t>(num_domains)) {}
    Executor exec;
    // inbox[src]: messages posted by domain `src` this epoch. Written only
    // by src's worker during the run phase, drained only by this domain's
    // worker after the barrier — single-writer, single-reader by phase.
    std::vector<std::vector<CrossMsg>> inbox;
    Cycles next_time = 0;
    bool has_next = false;
    std::uint64_t cross_received = 0;
  };

  // Barrier completion hook: alternates plan (choose the next epoch window
  // or stop) with a no-op between the run and drain phases.
  void OnBarrierPhase();
  void Plan();
  void RunDomain(int d);
  void DrainAndPublish(int d);
  void WorkerLoop(int worker);
  void RunSequential();

  Options opts_;
  int threads_ = 1;
  Cycles lookahead_;
  bool any_link_ = false;
  std::vector<std::unique_ptr<DomainState>> domains_;
  std::vector<Cycles> latency_;  // [src * D + dst]; 0 = no link

  // Epoch state: written only by the barrier completion step (exclusive) or
  // before workers start; reads are separated by the barrier.
  bool running_ = false;
  bool stop_ = false;
  Cycles epoch_end_ = 0;  // exclusive upper bound of the current epoch
  std::uint64_t epochs_ = 0;
  std::uint64_t barrier_phase_ = 0;

  struct PhaseHook {
    ParallelEngine* engine;
    void operator()() noexcept { engine->OnBarrierPhase(); }
  };
  std::optional<std::barrier<PhaseHook>> barrier_;
};

}  // namespace mk::sim

#endif  // MK_SIM_PARALLEL_H_
