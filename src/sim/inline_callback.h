// InlineCallback: a move-only, type-erased void() callable with small-buffer
// storage, used for every scheduled event in the executor.
//
// The dispatch loop of a discrete-event simulator touches one of these per
// event, so the type is built for that path: callables whose state fits in
// kInlineBytes (56 bytes — enough for a coroutine handle, an LRPC delivery
// closure, or a timeout node) live entirely inside the object and cost zero
// heap traffic to create, move, and destroy. Larger callables still work but
// fall back to a single heap allocation; keep hot-path closures under the
// budget (the static_assert below pins the object at one cache line).
#ifndef MK_SIM_INLINE_CALLBACK_H_
#define MK_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mk::sim {

class InlineCallback {
 public:
  static constexpr std::size_t kInlineBytes = 56;

  InlineCallback() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  // Destroys the stored callable (if any), leaving the callback empty.
  void reset() noexcept { Reset(); }

  // Replaces the stored callable. Fully inlineable for small F — the hot
  // construction path pays no indirect call.
  template <typename F, typename D = std::decay_t<F>>
  void emplace(F&& f) {
    Reset();
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  // True iff this callback stores exactly an inline D. Lets a dispatch loop
  // recognize its dominant callable type and bypass the indirect invoke.
  template <typename D>
  bool holds() const noexcept {
    return ops_ == &kInlineOps<D>;
  }

  // Precondition: holds<D>(). Direct access to the stored callable.
  template <typename D>
  D& get_unchecked() noexcept {
    return *std::launder(reinterpret_cast<D*>(storage_));
  }

  // Precondition: holds<D>(). Empties the callback without the indirect
  // destroy call; only valid for trivially destructible callables.
  template <typename D>
  void discard_unchecked() noexcept {
    static_assert(std::is_trivially_destructible_v<D>);
    ops_ = nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-constructs *src into dst and destroys *src (relocation): one
    // indirect call covers both move construction and the source teardown.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* self) { (*static_cast<D*>(self))(); },
      [](void* dst, void* src) noexcept {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* self) noexcept { static_cast<D*>(self)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* self) { (**static_cast<D**>(self))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* self) noexcept { delete *static_cast<D**>(self); },
  };

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

static_assert(sizeof(InlineCallback) == 64, "one cache line: 56B storage + ops pointer");

}  // namespace mk::sim

#endif  // MK_SIM_INLINE_CALLBACK_H_
