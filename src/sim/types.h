// Core simulation types shared across the multikernel reproduction.
#ifndef MK_SIM_TYPES_H_
#define MK_SIM_TYPES_H_

#include <cstdint>

namespace mk::sim {

// Simulated time, measured in CPU core clock cycles. All latencies reported by
// the benchmark harnesses are in these units, matching the paper's figures.
using Cycles = std::uint64_t;

// A simulated physical address. The machine model tracks coherence state at
// 64-byte cache-line granularity over this address space.
using Addr = std::uint64_t;

inline constexpr Addr kCacheLineBytes = 64;

// Rounds an address down to its cache-line base.
constexpr Addr LineBase(Addr a) { return a & ~(kCacheLineBytes - 1); }

// Number of cache lines covered by [addr, addr+bytes).
constexpr std::uint64_t LinesCovering(Addr addr, std::uint64_t bytes) {
  if (bytes == 0) {
    return 0;
  }
  Addr first = LineBase(addr);
  Addr last = LineBase(addr + bytes - 1);
  return (last - first) / kCacheLineBytes + 1;
}

}  // namespace mk::sim

#endif  // MK_SIM_TYPES_H_
