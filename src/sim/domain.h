// Domain identity for the parallel simulation engine (sim/parallel.h).
//
// A *domain* is one partition of the simulated world: a set of components
// that share mutable state freely (one hw::Machine and everything built on
// it) and therefore must execute on a single host thread. Domains interact
// only through the engine's cross-domain mailboxes, never by touching each
// other's objects.
//
// The current domain is published thread-locally by the engine around every
// run and drain phase, so layers that keep per-domain streams (mk::fault's
// per-spec Rng streams, sim::StreamPool) can key on it without plumbing a
// domain id through every call site. Outside an engine run — plain
// single-executor simulations, test setup, bench main() — the current domain
// is 0, which keeps every existing run byte-identical: domain 0's streams
// are seeded exactly as the pre-engine code seeded its only stream.
//
// This header is dependency-free on purpose: mk::fault and mk::trace link
// below mk_sim and must be able to read the current domain without pulling
// in the executor.
#ifndef MK_SIM_DOMAIN_H_
#define MK_SIM_DOMAIN_H_

namespace mk::sim {

// Hard cap on engine domains. Per-domain stream tables (fault specs) are
// sized by this; 64 covers the rack-scale roadmap (8 machines x 8 shards).
inline constexpr int kMaxDomains = 64;

namespace internal {
// Set by ParallelEngine around run/drain phases; 0 everywhere else.
inline thread_local int tls_current_domain = 0;
}  // namespace internal

// The domain whose events are executing on this host thread (0 outside an
// engine run).
inline int CurrentDomain() { return internal::tls_current_domain; }

}  // namespace mk::sim

#endif  // MK_SIM_DOMAIN_H_
