// Deterministic discrete-event executor: the simulated machine's clock.
//
// All simulated activity is driven by a single min-heap of timestamped events.
// Ties are broken by insertion order, so a given seed always produces a
// bit-identical run. The executor is single-threaded by design; parallelism in
// the simulated machine is expressed as interleaved events, not host threads.
#ifndef MK_SIM_EXECUTOR_H_
#define MK_SIM_EXECUTOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/task.h"
#include "sim/types.h"

namespace mk::sim {

class Executor {
 public:
  Executor() = default;
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  Cycles now() const { return now_; }

  // Resumes `h` at absolute time `t` (clamped to now()).
  void ScheduleAt(Cycles t, std::coroutine_handle<> h);

  // Runs `fn` at absolute time `t` (clamped to now()).
  void CallAt(Cycles t, std::function<void()> fn);

  // Awaitable: suspends the current task for `d` cycles of simulated time.
  auto Delay(Cycles d) {
    struct Awaiter {
      Executor* exec;
      Cycles delay;
      bool await_ready() const noexcept { return delay == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        exec->ScheduleAt(exec->now_ + delay, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  // Awaitable: reschedules the current task at the back of the current
  // timestamp's queue, letting other ready tasks run first.
  auto Yield() {
    struct Awaiter {
      Executor* exec;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { exec->ScheduleAt(exec->now_, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  // Starts a detached task. The executor owns its frame until completion; an
  // exception escaping a detached task aborts the simulation with a message.
  void Spawn(Task<> task);

  // Runs until the event queue drains. Returns the final simulated time.
  Cycles Run();

  // Runs events with timestamp <= `deadline`. Returns true if events remain.
  bool RunUntil(Cycles deadline);

  // Detached tasks spawned and not yet completed.
  std::size_t live_tasks() const { return live_tasks_; }

  // Total events dispatched so far (diagnostics / microbenchmarks).
  std::uint64_t events_dispatched() const { return events_dispatched_; }

 private:
  struct Item {
    Cycles at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;      // exactly one of handle/fn is set
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  void Dispatch(Item& item);

  Cycles now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::size_t live_tasks_ = 0;
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
};

}  // namespace mk::sim

#endif  // MK_SIM_EXECUTOR_H_
