// Deterministic discrete-event executor: the simulated machine's clock.
//
// All simulated activity is driven by a two-tier timestamped event queue,
// fronted by a one-event fast path:
//
//   * Hot slot — when the queue is otherwise empty, a pushed event parks in
//     a single inline slot and dispatches without touching the ring or the
//     bitmap. A lone task ping-ponging through Delay() (the most common
//     microbenchmark and boot-time shape) never leaves this path.
//   * Near tier — a ring of per-cycle FIFO buckets covering the next
//     kNearWindow cycles. Simulated delays cluster around small constants
//     (cache transfers, IPI wires, kernel paths are all well under 1024
//     cycles), so almost every event is an O(1) bucket append and an O(1)
//     pop, with an occupancy bitmap to skip empty cycles.
//   * Far tier — a binary heap ordered by (timestamp, insertion sequence)
//     for the rare events beyond the window (backoff timers, coarse
//     workload pacing). Far events migrate into the ring as the clock
//     approaches them, strictly before any same-cycle near event can be
//     enqueued, so global FIFO tie-breaking is preserved.
//
// Ties at one timestamp always run in insertion order, so a given seed
// produces a bit-identical run. Steady-state dispatch does no heap
// allocation: events carry an InlineCallback (56-byte small-buffer
// callable) in freelist-recycled nodes allocated in chunks, and coroutine
// resumption stores just the handle. The executor is single-threaded by
// design; parallelism in the simulated machine is expressed as interleaved
// events, not host threads.
#ifndef MK_SIM_EXECUTOR_H_
#define MK_SIM_EXECUTOR_H_

#include <algorithm>
#include <array>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/task.h"
#include "sim/types.h"
#include "trace/trace.h"

namespace mk::sim {

class ParallelEngine;

class Executor {
 public:
  // Width of the near-future bucket ring, in cycles. Power of two; sized to
  // cover the simulator's common delay constants (Delay(50..800), Yield).
  static constexpr Cycles kNearWindow = 1024;

  Executor() = default;
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  Cycles now() const { return now_; }

  // Resumes `h` at absolute time `t` (clamped to now()).
  void ScheduleAt(Cycles t, std::coroutine_handle<> h) { PushHandle(t, h); }

  // Runs `fn` at absolute time `t` (clamped to now()). Callables up to
  // InlineCallback::kInlineBytes are stored without heap allocation.
  void CallAt(Cycles t, InlineCallback fn) { Push(t, std::move(fn)); }

  // Awaitable: suspends the current task for `d` cycles of simulated time.
  auto Delay(Cycles d) {
    struct Awaiter {
      Executor* exec;
      Cycles delay;
      bool await_ready() const noexcept { return delay == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        exec->PushHandle(exec->now_ + delay, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  // Awaitable: reschedules the current task at the back of the current
  // timestamp's queue, letting other ready tasks run first.
  auto Yield() {
    struct Awaiter {
      Executor* exec;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        exec->PushHandle(exec->now_, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  // Starts a detached task. The executor owns its frame until completion; an
  // exception escaping a detached task aborts the simulation with a message.
  void Spawn(Task<> task);

  // Runs until the event queue drains. Returns the final simulated time.
  Cycles Run();

  // Runs events with timestamp <= `deadline`. Returns true if events remain.
  bool RunUntil(Cycles deadline);

  // Detached tasks spawned and not yet completed.
  std::size_t live_tasks() const { return live_tasks_; }

  // Total events dispatched so far (diagnostics / microbenchmarks).
  std::uint64_t events_dispatched() const { return events_dispatched_; }

  // Events currently queued across all tiers (invariant checks: a fully
  // drained run must report zero).
  std::size_t pending_events() const {
    return near_count_ + far_.size() + (hot_full_ ? 1 : 0);
  }

  // Earliest pending event's timestamp across all tiers; false when drained.
  // Used by the parallel engine to plan the next epoch window.
  bool NextEventTime(Cycles* out) const;

  // --- Parallel-engine binding (sim/parallel.h) ---
  //
  // A plain Executor is one engine *domain* when owned by a ParallelEngine;
  // standalone executors stay domain 0 with no engine. The binding is
  // observer state: it never changes the event schedule.
  int domain() const { return domain_; }
  ParallelEngine* engine() const { return engine_; }
  void BindEngine(ParallelEngine* engine, int domain) {
    engine_ = engine;
    domain_ = domain;
  }

  // While enforced, every push must come from `owner` — the host thread the
  // engine assigned this domain to. A push from any other thread is a
  // partitioning bug (two domains sharing mutable state), and under real
  // parallelism it would be a data race; abort loudly instead of corrupting
  // the queue. Enforcement is off (one branch on a cold bool) for
  // single-threaded runs, so the hot path is unchanged.
  void SetOwnerThread(std::thread::id owner, bool enforce) {
    owner_ = owner;
    enforce_owner_ = enforce;
  }

 private:
  static constexpr Cycles kWindowMask = kNearWindow - 1;
  static constexpr std::size_t kBitmapWords = kNearWindow / 64;

  // Resumes a suspended coroutine; 8 bytes, always stored inline.
  struct ResumeFn {
    std::coroutine_handle<> handle;
    void operator()() const { handle.resume(); }
  };

  struct FarItem {
    Cycles at;
    std::uint64_t seq;
    InlineCallback cb;
  };
  struct FarLater {
    bool operator()(const FarItem& a, const FarItem& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  // A near-tier event: one freelist-recycled node per queued event, linked
  // into its cycle's FIFO bucket. Nodes come from chunked slabs, so warm-up
  // costs O(chunks) allocations and steady state costs none.
  struct Node {
    InlineCallback cb;
    Node* next;
  };

  // Hot-slot fast path: an event pushed into an otherwise-empty queue parks
  // in a single inline slot. A second push demotes it into the normal tiers
  // (first, preserving its earlier insertion order) before enqueueing the
  // newcomer. Invariant: hot_full_ implies near_count_ == 0 && far_.empty().
  void PushHandle(Cycles t, std::coroutine_handle<> h) {
    CheckOwner();
    if (t < now_) {
      t = now_;
    }
    if (!hot_full_ && near_count_ == 0 && far_.empty()) {
      hot_full_ = true;
      hot_is_handle_ = true;
      hot_at_ = t;
      hot_handle_ = h;
      return;
    }
    if (hot_full_) {
      DemoteHot();
    }
    if (t - now_ < kNearWindow) {
      Node* n = GetNode();
      n->cb.emplace(ResumeFn{h});  // inline store: no type-erased call
      LinkNear(t, n);
    } else {
      EnqueueFar(t, InlineCallback(ResumeFn{h}));
    }
  }

  void Push(Cycles t, InlineCallback cb) {
    CheckOwner();
    if (t < now_) {
      t = now_;
    }
    if (!hot_full_ && near_count_ == 0 && far_.empty()) {
      hot_full_ = true;
      hot_is_handle_ = false;
      hot_at_ = t;
      hot_cb_ = std::move(cb);
      return;
    }
    if (hot_full_) {
      DemoteHot();
    }
    Enqueue(t, std::move(cb));
  }

  // Moves the hot-slot event into the normal tiers. The hot event was
  // inserted earlier than whatever push triggered the demotion, so it must
  // enqueue first for a same-cycle tie to keep global FIFO order.
  void DemoteHot() {
    hot_full_ = false;
    if (hot_is_handle_) {
      if (hot_at_ - now_ < kNearWindow) {
        Node* n = GetNode();
        n->cb.emplace(ResumeFn{hot_handle_});
        LinkNear(hot_at_, n);
      } else {
        EnqueueFar(hot_at_, InlineCallback(ResumeFn{hot_handle_}));
      }
    } else {
      Enqueue(hot_at_, std::move(hot_cb_));
    }
  }

  // Routes an event (time already clamped) into the near ring or far heap.
  void Enqueue(Cycles t, InlineCallback cb) {
    if (t - now_ < kNearWindow) {
      Node* n = GetNode();
      n->cb = std::move(cb);
      LinkNear(t, n);
    } else {
      EnqueueFar(t, std::move(cb));
    }
  }

  void LinkNear(Cycles t, Node* n) {
    const std::size_t slot = static_cast<std::size_t>(t & kWindowMask);
    n->next = nullptr;
    if (bucket_tail_[slot] != nullptr) {
      bucket_tail_[slot]->next = n;
    } else {
      bucket_head_[slot] = n;
    }
    bucket_tail_[slot] = n;
    occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    ++near_count_;
  }

  void EnqueueFar(Cycles t, InlineCallback cb) {
    far_.push_back(FarItem{t, next_seq_++, std::move(cb)});
    std::push_heap(far_.begin(), far_.end(), FarLater{});
  }

  Node* GetNode() {
    Node* n = free_;
    if (n != nullptr) {
      free_ = n->next;
      return n;
    }
    return RefillFreelist();
  }

  void PutNode(Node* n) noexcept {
    n->next = free_;
    free_ = n;
  }

  // Allocates a fresh chunk of nodes, seeds the freelist, returns one node.
  Node* RefillFreelist();

  // Dispatches the hot-slot event. Clears the slot before invoking so the
  // event may immediately re-arm the slot (the lone-task Delay loop).
  void DispatchHot() {
    now_ = hot_at_;
    ++events_dispatched_;
    trace::Emit<trace::Category::kExec>(trace::EventId::kExecCycle, hot_at_,
                                        trace::kExecutorTrack, /*arg0=*/1);
    hot_full_ = false;
    if (hot_is_handle_) {
      std::coroutine_handle<> h = hot_handle_;  // local copy: resume may re-arm the slot
      h.resume();
    } else {
      // Move out: the callback may push a new hot event over hot_cb_.
      InlineCallback cb = std::move(hot_cb_);
      cb();
    }
  }

  // Scans the occupancy bitmap for the earliest non-empty bucket cycle.
  // Requires near_count_ > 0.
  Cycles NextNearCycle() const;

  // Sets now_ = t and restores the invariant that the far heap holds no
  // event inside [now_, now_ + kNearWindow) by migrating due far events
  // into the ring. Must run before any event at the new time dispatches,
  // so that migrated (older-sequence) events precede same-cycle arrivals.
  void AdvanceTo(Cycles t);

  // Dispatches every event in the bucket for now_, including events appended
  // to it mid-dispatch (Yield and other same-cycle scheduling).
  void DispatchCycle();

  void CheckOwner() const {
    if (enforce_owner_ && std::this_thread::get_id() != owner_) {
      AbortCrossThreadPush();
    }
  }
  [[noreturn]] void AbortCrossThreadPush() const;

  Cycles now_ = 0;
  int domain_ = 0;                     // engine domain id; 0 standalone
  ParallelEngine* engine_ = nullptr;   // owning engine, if any
  bool enforce_owner_ = false;         // multi-threaded engine runs only
  std::thread::id owner_;
  std::uint64_t next_seq_ = 0;  // orders far-heap ties; near ties are FIFO by append
  std::uint64_t events_dispatched_ = 0;
  std::size_t live_tasks_ = 0;
  std::size_t near_count_ = 0;
  // Hot slot: the sole pending event when the rest of the queue is empty.
  bool hot_full_ = false;
  bool hot_is_handle_ = false;  // selects hot_handle_ vs hot_cb_
  Cycles hot_at_ = 0;
  std::coroutine_handle<> hot_handle_;
  InlineCallback hot_cb_;
  std::array<Node*, kNearWindow> bucket_head_{};  // per-cycle FIFO lists
  std::array<Node*, kNearWindow> bucket_tail_{};
  std::array<std::uint64_t, kBitmapWords> occupied_{};
  Node* free_ = nullptr;  // recycled-node freelist
  static constexpr std::size_t kNodeChunk = 128;
  std::vector<std::unique_ptr<Node[]>> chunks_;  // node slabs; owns all nodes
  std::vector<FarItem> far_;  // binary heap via std::push_heap/pop_heap
};

}  // namespace mk::sim

#endif  // MK_SIM_EXECUTOR_H_
