// Synchronization primitives for simulated tasks: Event, Semaphore, Mailbox.
//
// These are *simulation-level* primitives (they cost zero simulated cycles to
// use); they model control-flow coupling inside one simulated component.
// Anything that should cost cycles or interconnect traffic must instead go
// through the hw:: machine model.
#ifndef MK_SIM_EVENT_H_
#define MK_SIM_EVENT_H_

#include <coroutine>
#include <cstddef>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "sim/executor.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::sim {

// A broadcast condition: Wait() suspends until the next Signal(). Signal wakes
// every currently-waiting task at the current simulated time. WaitTimeout()
// additionally resumes after a deadline, reporting whether the event fired.
class Event {
 public:
  explicit Event(Executor& exec) : exec_(exec) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  auto Wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        event->waiters_.push_back(std::make_shared<Node>(Node{h, true, false}));
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  // Suspends until Signal() or until `timeout` cycles elapse, whichever comes
  // first. Returns true if the event was signaled in time.
  auto WaitTimeout(Cycles timeout) {
    struct Awaiter {
      Event* event;
      Cycles timeout;
      std::shared_ptr<Node> node;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        node = std::make_shared<Node>(Node{h, true, false});
        event->waiters_.push_back(node);
        Executor& exec = event->exec_;
        exec.CallAt(exec.now() + timeout, [node = node, &exec] {
          if (node->active) {
            node->active = false;
            node->signaled = false;
            exec.ScheduleAt(exec.now(), node->handle);
          }
        });
      }
      bool await_resume() const noexcept { return node->signaled; }
    };
    return Awaiter{this, timeout, nullptr};
  }

  // Wakes all waiters. Waiters registered after this call wait for the next
  // signal.
  void Signal() {
    auto woken = std::move(waiters_);
    waiters_.clear();
    for (auto& node : woken) {
      WakeNode(*node);
    }
  }

  // Wakes the oldest waiter, if any. Returns whether a waiter was woken.
  bool SignalOne() {
    while (!waiters_.empty()) {
      auto node = waiters_.front();
      waiters_.erase(waiters_.begin());
      if (node->active) {
        WakeNode(*node);
        return true;
      }
    }
    return false;
  }

  std::size_t waiter_count() const {
    std::size_t n = 0;
    for (const auto& node : waiters_) {
      if (node->active) {
        ++n;
      }
    }
    return n;
  }

 private:
  struct Node {
    std::coroutine_handle<> handle;
    bool active = true;
    bool signaled = false;
  };

  void WakeNode(Node& node) {
    if (!node.active) {
      return;
    }
    node.active = false;
    node.signaled = true;
    exec_.ScheduleAt(exec_.now(), node.handle);
  }

  Executor& exec_;
  std::vector<std::shared_ptr<Node>> waiters_;
};

// Counting semaphore with FIFO wakeup order.
class Semaphore {
 public:
  Semaphore(Executor& exec, std::size_t initial) : exec_(exec), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  auto Acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept {
        if (sem->count_ > 0 && sem->waiters_.empty()) {
          --sem->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { sem->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void Release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      exec_.ScheduleAt(exec_.now(), h);
      return;
    }
    ++count_;
  }

  std::size_t available() const { return count_; }

 private:
  Executor& exec_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// An unbounded single-consumer mailbox carrying values of type T. Used for
// zero-cost intra-component queues (e.g. a CPU driver's pending-trap queue).
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Executor& exec) : exec_(exec), ready_(exec) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void Send(T value) {
    items_.push_back(std::move(value));
    ready_.SignalOne();
  }

  Task<T> Recv() {
    while (items_.empty()) {
      co_await ready_.Wait();
    }
    T value = std::move(items_.front());
    items_.pop_front();
    co_return value;
  }

  bool TryRecv(T* out) {
    if (items_.empty()) {
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

 private:
  Executor& exec_;
  Event ready_;
  std::deque<T> items_;
};

// A serially-occupied resource (a memory controller, an interconnect link, a
// NIC DMA engine). Transactions reserve `service` cycles of exclusive use;
// arrivals while busy queue FIFO. Returns the completion time, so callers
// co_await exec.Delay(completion - now) to model the queueing + service delay.
class FifoResource {
 public:
  FifoResource() = default;

  Cycles ReserveAt(Cycles now, Cycles service) {
    Cycles start = now > busy_until_ ? now : busy_until_;
    busy_until_ = start + service;
    total_busy_ += service;
    ++transactions_;
    return busy_until_;
  }

  Cycles busy_until() const { return busy_until_; }
  Cycles total_busy() const { return total_busy_; }
  std::uint64_t transactions() const { return transactions_; }

  // Utilization over [0, horizon], in [0, 1].
  double Utilization(Cycles horizon) const {
    if (horizon == 0) {
      return 0.0;
    }
    return static_cast<double>(total_busy_) / static_cast<double>(horizon);
  }

  void Reset() {
    busy_until_ = 0;
    total_busy_ = 0;
    transactions_ = 0;
  }

 private:
  Cycles busy_until_ = 0;
  Cycles total_busy_ = 0;
  std::uint64_t transactions_ = 0;
};

}  // namespace mk::sim

#endif  // MK_SIM_EVENT_H_
