// Synchronization primitives for simulated tasks: Event, Semaphore, Mailbox.
//
// These are *simulation-level* primitives (they cost zero simulated cycles to
// use); they model control-flow coupling inside one simulated component.
// Anything that should cost cycles or interconnect traffic must instead go
// through the hw:: machine model.
//
// Waiter bookkeeping is intrusive: a plain Wait() links a node that lives in
// the awaiting coroutine's frame into the event's doubly-linked waiter list,
// so registering and waking a waiter does no heap allocation. Only
// WaitTimeout() allocates (a shared node kept alive for the timer callback;
// see the comment there) — acceptable because timed waits are the cold
// blocking path, not the message fast path.
#ifndef MK_SIM_EVENT_H_
#define MK_SIM_EVENT_H_

#include <coroutine>
#include <cstddef>
#include <deque>
#include <memory>
#include <utility>

#include "sim/executor.h"
#include "sim/task.h"
#include "sim/types.h"

namespace mk::sim {

// A broadcast condition: Wait() suspends until the next Signal(). Signal wakes
// every currently-waiting task at the current simulated time. WaitTimeout()
// additionally resumes after a deadline, reporting whether the event fired.
class Event {
 public:
  explicit Event(Executor& exec) : exec_(exec) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  auto Wait() {
    struct Awaiter {
      Event* event;
      WaitNode node;
      explicit Awaiter(Event* e) : event(e) {}
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        node.handle = h;
        event->Link(&node);
      }
      void await_resume() noexcept {}
      // The node lives in this awaiter (in the coroutine frame). If the frame
      // dies — normally right after resuming, exceptionally if the task is
      // destroyed while suspended — drop the node from the waiter list.
      ~Awaiter() { event->UnlinkIfLinked(&node); }
    };
    return Awaiter(this);
  }

  // Suspends until Signal() or until `timeout` cycles elapse, whichever comes
  // first. Returns true if the event was signaled in time.
  //
  // The node is heap-allocated and shared with the timer callback: the timer
  // cannot be cancelled once scheduled, and it may fire long after the waiter
  // was signaled, resumed, and destroyed — the shared_ptr keeps the node (and
  // its flags) valid until then. The list only ever holds the node while this
  // awaiter is alive (await_resume/destructor unlink it).
  auto WaitTimeout(Cycles timeout) {
    struct Awaiter {
      Event* event;
      Cycles timeout;
      std::shared_ptr<WaitNode> node;
      Awaiter(Event* e, Cycles t) : event(e), timeout(t) {}
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        node = std::make_shared<WaitNode>();
        node->handle = h;
        event->Link(node.get());
        Executor& exec = event->exec_;
        exec.CallAt(exec.now() + timeout, [node = node, &exec] {
          if (node->active) {
            node->active = false;
            node->signaled = false;
            exec.ScheduleAt(exec.now(), node->handle);
          }
        });
      }
      bool await_resume() noexcept {
        event->UnlinkIfLinked(node.get());
        return node->signaled;
      }
      ~Awaiter() {
        if (node != nullptr) {
          event->UnlinkIfLinked(node.get());
          node->active = false;  // a still-pending timer must not resume us
        }
      }
    };
    return Awaiter(this, timeout);
  }

  // Wakes all waiters. Waiters registered after this call wait for the next
  // signal.
  void Signal() {
    WaitNode* n = head_;
    head_ = tail_ = nullptr;
    while (n != nullptr) {
      WaitNode* next = n->next;  // read before waking: the node belongs to the waiter
      n->linked = false;
      n->prev = n->next = nullptr;
      WakeNode(*n);
      n = next;
    }
  }

  // Wakes the oldest waiter, if any. Returns whether a waiter was woken.
  bool SignalOne() {
    while (head_ != nullptr) {
      WaitNode* n = head_;
      UnlinkIfLinked(n);
      if (n->active) {
        WakeNode(*n);
        return true;
      }
    }
    return false;
  }

  std::size_t waiter_count() const {
    std::size_t count = 0;
    for (const WaitNode* n = head_; n != nullptr; n = n->next) {
      if (n->active) {
        ++count;
      }
    }
    return count;
  }

 private:
  struct WaitNode {
    std::coroutine_handle<> handle;
    WaitNode* prev = nullptr;
    WaitNode* next = nullptr;
    bool linked = false;
    bool active = true;
    bool signaled = false;
  };

  void Link(WaitNode* n) {
    n->linked = true;
    n->prev = tail_;
    n->next = nullptr;
    if (tail_ != nullptr) {
      tail_->next = n;
    } else {
      head_ = n;
    }
    tail_ = n;
  }

  void UnlinkIfLinked(WaitNode* n) noexcept {
    if (!n->linked) {
      return;
    }
    n->linked = false;
    if (n->prev != nullptr) {
      n->prev->next = n->next;
    } else {
      head_ = n->next;
    }
    if (n->next != nullptr) {
      n->next->prev = n->prev;
    } else {
      tail_ = n->prev;
    }
    n->prev = n->next = nullptr;
  }

  void WakeNode(WaitNode& node) {
    if (!node.active) {
      return;
    }
    node.active = false;
    node.signaled = true;
    exec_.ScheduleAt(exec_.now(), node.handle);
  }

  Executor& exec_;
  WaitNode* head_ = nullptr;  // FIFO: head is the oldest waiter
  WaitNode* tail_ = nullptr;
};

// Counting semaphore with FIFO wakeup order.
class Semaphore {
 public:
  Semaphore(Executor& exec, std::size_t initial) : exec_(exec), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  auto Acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept {
        if (sem->count_ > 0 && sem->waiters_.empty()) {
          --sem->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { sem->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void Release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      exec_.ScheduleAt(exec_.now(), h);
      return;
    }
    ++count_;
  }

  std::size_t available() const { return count_; }

 private:
  Executor& exec_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// An unbounded single-consumer mailbox carrying values of type T. Used for
// zero-cost intra-component queues (e.g. a CPU driver's pending-trap queue).
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Executor& exec) : exec_(exec), ready_(exec) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void Send(T value) {
    items_.push_back(std::move(value));
    ready_.SignalOne();
  }

  Task<T> Recv() {
    while (items_.empty()) {
      co_await ready_.Wait();
    }
    T value = std::move(items_.front());
    items_.pop_front();
    co_return value;
  }

  bool TryRecv(T* out) {
    if (items_.empty()) {
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

 private:
  Executor& exec_;
  Event ready_;
  std::deque<T> items_;
};

// A serially-occupied resource (a memory controller, an interconnect link, a
// NIC DMA engine). Transactions reserve `service` cycles of exclusive use;
// arrivals while busy queue FIFO. Returns the completion time, so callers
// co_await exec.Delay(completion - now) to model the queueing + service delay.
class FifoResource {
 public:
  FifoResource() = default;

  Cycles ReserveAt(Cycles now, Cycles service) {
    Cycles start = now > busy_until_ ? now : busy_until_;
    busy_until_ = start + service;
    total_busy_ += service;
    ++transactions_;
    return busy_until_;
  }

  Cycles busy_until() const { return busy_until_; }
  Cycles total_busy() const { return total_busy_; }
  std::uint64_t transactions() const { return transactions_; }

  // Utilization over [0, horizon], in [0, 1].
  double Utilization(Cycles horizon) const {
    if (horizon == 0) {
      return 0.0;
    }
    return static_cast<double>(total_busy_) / static_cast<double>(horizon);
  }

  void Reset() {
    busy_until_ = 0;
    total_busy_ = 0;
    transactions_ = 0;
  }

 private:
  Cycles busy_until_ = 0;
  Cycles total_busy_ = 0;
  std::uint64_t transactions_ = 0;
};

}  // namespace mk::sim

#endif  // MK_SIM_EVENT_H_
