// Task<T>: a lazily-started coroutine used for all simulated activities.
//
// Simulated OS components (CPU drivers, monitors, applications) are written as
// ordinary-looking sequential code that co_awaits simulated time (delays,
// memory transactions, message arrivals). A Task does not run until it is
// awaited or spawned on an Executor; completion resumes the awaiter via
// symmetric transfer so nested calls add no simulated time of their own.
//
// WARNING (lambda coroutines): a coroutine lambda's captures live in the
// lambda *object*, not the coroutine frame. A capturing lambda immediately
// invoked and handed to Executor::Spawn dangles as soon as the temporary is
// destroyed. Pass state as coroutine *parameters* instead — parameters are
// copied (or reference-bound) into the frame and remain valid.
#ifndef MK_SIM_TASK_H_
#define MK_SIM_TASK_H_

#include <coroutine>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <utility>

namespace mk::sim {

template <typename T = void>
class Task;

namespace internal {

class PromiseBase {
 public:
  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      // continuation_ defaults to the noop coroutine, so the symmetric
      // transfer below is branch-free on the completion hot path.
      return h.promise().continuation_;
    }
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception_ = std::current_exception(); }

  void set_continuation(std::coroutine_handle<> c) noexcept { continuation_ = c; }

  void RethrowIfFailed() {
    if (exception_) {
      std::rethrow_exception(exception_);
    }
  }

 private:
  std::coroutine_handle<> continuation_ = std::noop_coroutine();
  std::exception_ptr exception_;
};

}  // namespace internal

// A lazily started coroutine producing a value of type T.
template <typename T>
class Task {
 public:
  class promise_type : public internal::PromiseBase {
   public:
    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T value) { value_.emplace(std::move(value)); }
    T Consume() {
      RethrowIfFailed();
      return std::move(*value_);
    }

   private:
    std::optional<T> value_;
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  // Awaiting a Task starts it and suspends the awaiter until it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) noexcept {
        handle.promise().set_continuation(awaiter);
        return handle;
      }
      T await_resume() { return handle.promise().Consume(); }
    };
    return Awaiter{handle_};
  }

  // Used by Executor::Spawn; not part of the public simulation API.
  std::coroutine_handle<promise_type> release() noexcept { return std::exchange(handle_, {}); }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class Task<void> {
 public:
  class promise_type : public internal::PromiseBase {
   public:
    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
    void Consume() { RethrowIfFailed(); }
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) noexcept {
        handle.promise().set_continuation(awaiter);
        return handle;
      }
      void await_resume() { handle.promise().Consume(); }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() noexcept { return std::exchange(handle_, {}); }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace mk::sim

#endif  // MK_SIM_TASK_H_
