#include "sim/executor.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <exception>

namespace mk::sim {
namespace {

// Wrapper coroutine owning a detached task's frame. Self-destroys on
// completion (final_suspend never suspends).
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      try {
        std::rethrow_exception(std::current_exception());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "fatal: exception escaped detached sim task: %s\n", e.what());
      } catch (...) {
        std::fprintf(stderr, "fatal: unknown exception escaped detached sim task\n");
      }
      std::abort();
    }
  };
};

Detached RunDetached(Task<> task, std::size_t* live_counter) {
  co_await std::move(task);
  --*live_counter;
}

}  // namespace

void Executor::Spawn(Task<> task) {
  ++live_tasks_;
  // The wrapper starts eagerly; the inner task suspends at its first await or
  // completes synchronously, decrementing the live counter.
  RunDetached(std::move(task), &live_tasks_);
}

Cycles Executor::NextNearCycle() const {
  const std::size_t start = static_cast<std::size_t>(now_ & kWindowMask);
  const std::size_t start_word = start >> 6;
  // The start word, masked to slots at or after `start`.
  std::uint64_t word = occupied_[start_word] & (~std::uint64_t{0} << (start & 63));
  std::size_t w = start_word;
  for (std::size_t step = 0;; ++step) {
    if (word != 0) {
      const std::size_t slot = (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
      const Cycles d = static_cast<Cycles>((slot + kNearWindow - start) & kWindowMask);
      return now_ + d;
    }
    w = (w + 1) & (kBitmapWords - 1);
    word = occupied_[w];
    if (step == kBitmapWords - 1) {
      // Wrapped back to the start word: only slots before `start` remain
      // (they are the most distant cycles of the window).
      word &= ~(~std::uint64_t{0} << (start & 63));
    }
  }
}

bool Executor::NextEventTime(Cycles* out) const {
  // The hot slot implies an otherwise-empty queue, but stay general: the
  // answer is the min over whichever tiers hold events.
  bool have = false;
  Cycles best = 0;
  if (hot_full_) {
    best = hot_at_;
    have = true;
  }
  if (near_count_ > 0) {
    const Cycles c = NextNearCycle();
    if (!have || c < best) {
      best = c;
    }
    have = true;
  }
  if (!far_.empty()) {
    const Cycles c = far_.front().at;
    if (!have || c < best) {
      best = c;
    }
    have = true;
  }
  if (have) {
    *out = best;
  }
  return have;
}

void Executor::AbortCrossThreadPush() const {
  std::fprintf(stderr,
               "fatal: cross-thread push into domain %d's event queue — a "
               "component is shared between engine domains (route it through "
               "ParallelEngine::Post instead)\n",
               domain_);
  std::abort();
}

Executor::Node* Executor::RefillFreelist() {
  // Default-init (not value-init): node callbacks construct empty, the rest
  // of each node's 80 bytes stays untouched until first use.
  std::unique_ptr<Node[]> chunk(new Node[kNodeChunk]);
  for (std::size_t i = kNodeChunk - 1; i >= 1; --i) {
    chunk[i].next = free_;
    free_ = &chunk[i];
  }
  Node* n = &chunk[0];
  chunks_.push_back(std::move(chunk));
  return n;
}

void Executor::AdvanceTo(Cycles t) {
  now_ = t;
  while (!far_.empty() && far_.front().at - now_ < kNearWindow) {
    std::pop_heap(far_.begin(), far_.end(), FarLater{});
    FarItem item = std::move(far_.back());
    far_.pop_back();
    Node* n = GetNode();
    n->cb = std::move(item.cb);
    LinkNear(item.at, n);
  }
}

void Executor::DispatchCycle() {
  const std::size_t slot = static_cast<std::size_t>(now_ & kWindowMask);
  // Pop-invoke until the bucket drains. An invoked event may append
  // same-cycle events (Yield, immediate wake-ups); they link onto the tail
  // and this loop reaches them in insertion order. The head node is
  // unlinked before invoking, so mid-dispatch appends to an emptied bucket
  // start a fresh list. Coroutine resumptions — the dominant event kind —
  // skip the type-erased invoke and destroy calls entirely.
  Node* n;
  std::uint64_t dispatched = 0;
  while ((n = bucket_head_[slot]) != nullptr) {
    bucket_head_[slot] = n->next;
    if (n->next == nullptr) {
      bucket_tail_[slot] = nullptr;
    }
    --near_count_;
    ++events_dispatched_;
    ++dispatched;
    if (n->cb.holds<ResumeFn>()) {
      const std::coroutine_handle<> h = n->cb.get_unchecked<ResumeFn>().handle;
      n->cb.discard_unchecked<ResumeFn>();
      PutNode(n);  // node is dead before resume; the callee may reuse it
      h.resume();
    } else {
      n->cb();     // in place: the node is unlinked but still owned here
      n->cb.reset();
      PutNode(n);
    }
  }
  occupied_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  trace::Emit<trace::Category::kExec>(trace::EventId::kExecCycle, now_,
                                      trace::kExecutorTrack, dispatched);
}

Cycles Executor::Run() {
  for (;;) {
    if (hot_full_) {
      DispatchHot();
      continue;
    }
    if (near_count_ == 0) {
      if (far_.empty()) {
        break;
      }
      AdvanceTo(far_.front().at);  // jump across the empty gap; migrates
      continue;
    }
    AdvanceTo(NextNearCycle());
    DispatchCycle();
  }
  return now_;
}

bool Executor::RunUntil(Cycles deadline) {
  for (;;) {
    if (hot_full_) {
      if (hot_at_ > deadline) {
        break;
      }
      DispatchHot();
      continue;
    }
    if (near_count_ == 0) {
      if (far_.empty() || far_.front().at > deadline) {
        break;
      }
      AdvanceTo(far_.front().at);
      continue;
    }
    const Cycles c = NextNearCycle();
    if (c > deadline) {
      break;
    }
    AdvanceTo(c);
    DispatchCycle();
  }
  if (now_ < deadline) {
    AdvanceTo(deadline);  // keep the far-migration invariant at the new time
  }
  return hot_full_ || near_count_ != 0 || !far_.empty();
}

}  // namespace mk::sim
