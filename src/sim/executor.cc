#include "sim/executor.h"

#include <cstdio>
#include <cstdlib>
#include <exception>

namespace mk::sim {
namespace {

// Wrapper coroutine owning a detached task's frame. Self-destroys on
// completion (final_suspend never suspends).
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      try {
        std::rethrow_exception(std::current_exception());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "fatal: exception escaped detached sim task: %s\n", e.what());
      } catch (...) {
        std::fprintf(stderr, "fatal: unknown exception escaped detached sim task\n");
      }
      std::abort();
    }
  };
};

Detached RunDetached(Task<> task, std::size_t* live_counter) {
  co_await std::move(task);
  --*live_counter;
}

}  // namespace

void Executor::ScheduleAt(Cycles t, std::coroutine_handle<> h) {
  if (t < now_) {
    t = now_;
  }
  queue_.push(Item{t, next_seq_++, h, nullptr});
}

void Executor::CallAt(Cycles t, std::function<void()> fn) {
  if (t < now_) {
    t = now_;
  }
  queue_.push(Item{t, next_seq_++, nullptr, std::move(fn)});
}

void Executor::Spawn(Task<> task) {
  ++live_tasks_;
  // The wrapper starts eagerly; the inner task suspends at its first await or
  // completes synchronously, decrementing the live counter.
  RunDetached(std::move(task), &live_tasks_);
}

void Executor::Dispatch(Item& item) {
  now_ = item.at;
  ++events_dispatched_;
  if (item.handle) {
    item.handle.resume();
  } else {
    item.fn();
  }
}

Cycles Executor::Run() {
  while (!queue_.empty()) {
    Item item = queue_.top();
    queue_.pop();
    Dispatch(item);
  }
  return now_;
}

bool Executor::RunUntil(Cycles deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Item item = queue_.top();
    queue_.pop();
    Dispatch(item);
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return !queue_.empty();
}

}  // namespace mk::sim
