#include "sim/parallel.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "trace/trace.h"

namespace mk::sim {
namespace {

// Publishes the identity of domain `d` on the calling host thread: the
// per-domain Rng/fault streams key on sim::CurrentDomain(), and trace
// records shift onto the domain's private track range so every trace ring
// stays single-writer.
void EnterDomainTls(int d, std::uint16_t track_stride) {
  internal::tls_current_domain = d;
  trace::internal::tls_track_offset =
      static_cast<std::uint16_t>(static_cast<unsigned>(d) * track_stride);
}

void ResetDomainTls() {
  internal::tls_current_domain = 0;
  trace::internal::tls_track_offset = 0;
}

[[noreturn]] void Fatal(const char* msg, long a = 0, long b = 0, long c = 0) {
  std::fprintf(stderr, "fatal: parallel engine: ");
  std::fprintf(stderr, msg, a, b, c);
  std::fputc('\n', stderr);
  std::abort();
}

}  // namespace

ParallelEngine::ParallelEngine(Options opts) : opts_(opts) {
  if (opts_.domains < 1 || opts_.domains > kMaxDomains) {
    Fatal("domains=%ld outside [1, %ld]", opts_.domains, kMaxDomains);
  }
  if (opts_.default_lookahead < 1) {
    Fatal("default_lookahead must be >= 1");
  }
  threads_ = std::clamp(opts_.threads, 1, opts_.domains);
  lookahead_ = opts_.default_lookahead;
  domains_.reserve(static_cast<std::size_t>(opts_.domains));
  for (int d = 0; d < opts_.domains; ++d) {
    domains_.push_back(std::make_unique<DomainState>(opts_.domains));
    domains_.back()->exec.BindEngine(this, d);
  }
  latency_.assign(
      static_cast<std::size_t>(opts_.domains) * static_cast<std::size_t>(opts_.domains), 0);
}

ParallelEngine::~ParallelEngine() = default;

void ParallelEngine::Link(int src, int dst, Cycles latency) {
  if (running_) {
    Fatal("Link(%ld, %ld) during a run", src, dst);
  }
  if (src < 0 || src >= num_domains() || dst < 0 || dst >= num_domains() || src == dst) {
    Fatal("bad link %ld -> %ld (%ld domains)", src, dst, num_domains());
  }
  if (latency < 1) {
    // A zero-latency cross-domain link would collapse the lookahead window
    // to nothing: the domains share a synchronous clock and belong in one
    // domain instead.
    Fatal("link %ld -> %ld latency must be >= 1 cycle", src, dst);
  }
  latency_[static_cast<std::size_t>(src) * domains_.size() + static_cast<std::size_t>(dst)] =
      latency;
  any_link_ = true;
  lookahead_ = std::min(lookahead_, latency);
}

void ParallelEngine::Post(int src, int dst, Cycles at, InlineCallback cb) {
  if (dst < 0 || dst >= num_domains()) {
    Fatal("Post to unknown domain %ld", dst);
  }
  if (!running_) {
    // Setup path (before Run()): no worker owns the queue yet, enqueue
    // directly. Used to seed cross-domain workloads.
    domains_[static_cast<std::size_t>(dst)]->exec.CallAt(at, std::move(cb));
    return;
  }
  if (CurrentDomain() != src) {
    Fatal("Post claims src domain %ld but runs in domain %ld", src, CurrentDomain());
  }
  const Cycles lat = link_latency(src, dst);
  if (lat == 0) {
    Fatal("Post %ld -> %ld without a registered link", src, dst);
  }
  const Cycles src_now = domains_[static_cast<std::size_t>(src)]->exec.now();
  if (at < src_now + lat) {
    // Conservative-lookahead violation: the destination may already have
    // dispatched past `at` in this epoch. Delivering would fork the
    // timeline, so die loudly — this is a modeling bug at the call site.
    Fatal("Post %ld -> %ld at t=%ld violates conservative bound now+latency",
          src, dst, static_cast<long>(at));
  }
  // Buffered in the (src, dst) mailbox: written only by src's worker this
  // phase, drained only by dst's worker after the barrier.
  domains_[static_cast<std::size_t>(dst)]->inbox[static_cast<std::size_t>(src)].push_back(
      CrossMsg{at, std::move(cb)});
}

void ParallelEngine::Send(int src, int dst, InlineCallback cb) {
  const Cycles lat = link_latency(src, dst);
  if (lat == 0) {
    Fatal("Send %ld -> %ld without a registered link", src, dst);
  }
  Post(src, dst, domains_[static_cast<std::size_t>(src)]->exec.now() + lat, std::move(cb));
}

void ParallelEngine::Plan() {
  // Runs exclusively: barrier completion step (threaded) or inline between
  // epochs (sequential). Inboxes are empty here — every drain preceded this.
  bool any = false;
  Cycles t0 = 0;
  for (const auto& ds : domains_) {
    if (ds->has_next && (!any || ds->next_time < t0)) {
      t0 = ds->next_time;
      any = true;
    }
  }
  if (!any) {
    stop_ = true;
    return;
  }
  // Epoch window [t0, t0 + lookahead): every event in it is safe to run
  // without observing peer domains, because anything a peer does at u >= t0
  // lands at u + latency >= t0 + lookahead. Starting at the global minimum
  // fast-forwards idle gaps in one hop.
  epoch_end_ = t0 + lookahead_;
  ++epochs_;
}

void ParallelEngine::OnBarrierPhase() {
  // Even phases separate drain from the next run: plan the epoch. Odd
  // phases separate run from drain: nothing to decide.
  if ((barrier_phase_++ & 1) == 0) {
    Plan();
  }
}

void ParallelEngine::RunDomain(int d) {
  DomainState& ds = *domains_[static_cast<std::size_t>(d)];
  EnterDomainTls(d, opts_.track_stride);
  // RunUntil dispatches every event with t <= epoch_end - 1, i.e. inside
  // [.., epoch_end), then parks the clock at the epoch edge.
  ds.exec.RunUntil(epoch_end_ - 1);
}

void ParallelEngine::DrainAndPublish(int d) {
  DomainState& ds = *domains_[static_cast<std::size_t>(d)];
  EnterDomainTls(d, opts_.track_stride);
  // Fixed merge order: ascending source domain, FIFO within a source. The
  // enqueue order of cross-domain events is therefore a pure function of
  // the simulation, independent of host thread interleaving — same-cycle
  // ties resolve identically at any thread count.
  for (std::size_t src = 0; src < domains_.size(); ++src) {
    auto& box = ds.inbox[src];
    for (CrossMsg& m : box) {
      ds.exec.CallAt(m.at, std::move(m.cb));
      ++ds.cross_received;
    }
    box.clear();
  }
  ds.has_next = ds.exec.NextEventTime(&ds.next_time);
}

void ParallelEngine::RunSequential() {
  // Identical phase sequence to the threaded path (plan, run 0..D-1, drain
  // 0..D-1), so thread count can only change wall-clock, never the schedule.
  for (;;) {
    Plan();
    if (stop_) {
      break;
    }
    for (int d = 0; d < num_domains(); ++d) {
      RunDomain(d);
    }
    for (int d = 0; d < num_domains(); ++d) {
      DrainAndPublish(d);
    }
  }
}

void ParallelEngine::WorkerLoop(int worker) {
  // Round-robin domain ownership: worker w runs domains d with d % threads
  // == w. Owner enforcement turns every cross-domain push that bypasses the
  // mailboxes into a loud abort instead of a data race.
  for (int d = worker; d < num_domains(); d += threads_) {
    domains_[static_cast<std::size_t>(d)]->exec.SetOwnerThread(std::this_thread::get_id(),
                                                               /*enforce=*/true);
  }
  for (;;) {
    barrier_->arrive_and_wait();  // completion step plans the epoch (or stops)
    if (stop_) {
      break;
    }
    for (int d = worker; d < num_domains(); d += threads_) {
      RunDomain(d);
    }
    barrier_->arrive_and_wait();  // all domains reached the epoch edge
    for (int d = worker; d < num_domains(); d += threads_) {
      DrainAndPublish(d);
    }
  }
  for (int d = worker; d < num_domains(); d += threads_) {
    domains_[static_cast<std::size_t>(d)]->exec.SetOwnerThread({}, /*enforce=*/false);
  }
  ResetDomainTls();
}

Cycles ParallelEngine::Run() {
  if (num_domains() == 1) {
    // One domain is the plain single-threaded simulator: no epochs, no
    // barrier, byte-identical to not using the engine at all.
    return domains_[0]->exec.Run();
  }
  running_ = true;
  stop_ = false;
  barrier_phase_ = 0;
  for (auto& ds : domains_) {
    ds->has_next = ds->exec.NextEventTime(&ds->next_time);
  }
  if (threads_ == 1) {
    RunSequential();
    ResetDomainTls();
  } else {
    barrier_.emplace(threads_, PhaseHook{this});
    {
      std::vector<std::jthread> workers;
      workers.reserve(static_cast<std::size_t>(threads_));
      for (int w = 0; w < threads_; ++w) {
        workers.emplace_back([this, w] { WorkerLoop(w); });
      }
    }
    barrier_.reset();
  }
  running_ = false;
  return max_now();
}

std::uint64_t ParallelEngine::cross_messages() const {
  std::uint64_t n = 0;
  for (const auto& ds : domains_) {
    n += ds->cross_received;
  }
  return n;
}

std::uint64_t ParallelEngine::events_dispatched() const {
  std::uint64_t n = 0;
  for (const auto& ds : domains_) {
    n += ds->exec.events_dispatched();
  }
  return n;
}

Cycles ParallelEngine::max_now() const {
  Cycles t = 0;
  for (const auto& ds : domains_) {
    t = std::max(t, ds->exec.now());
  }
  return t;
}

}  // namespace mk::sim
