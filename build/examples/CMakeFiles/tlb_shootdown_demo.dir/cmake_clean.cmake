file(REMOVE_RECURSE
  "CMakeFiles/tlb_shootdown_demo.dir/tlb_shootdown_demo.cpp.o"
  "CMakeFiles/tlb_shootdown_demo.dir/tlb_shootdown_demo.cpp.o.d"
  "tlb_shootdown_demo"
  "tlb_shootdown_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_shootdown_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
