# Empty compiler generated dependencies file for tlb_shootdown_demo.
# This may be replaced when dependencies are built.
