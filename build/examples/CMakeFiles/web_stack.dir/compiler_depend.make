# Empty compiler generated dependencies file for web_stack.
# This may be replaced when dependencies are built.
