file(REMOVE_RECURSE
  "CMakeFiles/distributed_services.dir/distributed_services.cpp.o"
  "CMakeFiles/distributed_services.dir/distributed_services.cpp.o.d"
  "distributed_services"
  "distributed_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
