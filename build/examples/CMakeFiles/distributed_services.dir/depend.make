# Empty dependencies file for distributed_services.
# This may be replaced when dependencies are built.
