# Empty compiler generated dependencies file for mk_fs.
# This may be replaced when dependencies are built.
