file(REMOVE_RECURSE
  "CMakeFiles/mk_fs.dir/fs/ramfs.cc.o"
  "CMakeFiles/mk_fs.dir/fs/ramfs.cc.o.d"
  "libmk_fs.a"
  "libmk_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
