file(REMOVE_RECURSE
  "libmk_fs.a"
)
