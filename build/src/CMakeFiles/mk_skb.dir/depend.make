# Empty dependencies file for mk_skb.
# This may be replaced when dependencies are built.
