file(REMOVE_RECURSE
  "libmk_skb.a"
)
