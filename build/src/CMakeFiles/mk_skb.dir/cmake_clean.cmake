file(REMOVE_RECURSE
  "CMakeFiles/mk_skb.dir/skb/datalog.cc.o"
  "CMakeFiles/mk_skb.dir/skb/datalog.cc.o.d"
  "CMakeFiles/mk_skb.dir/skb/skb.cc.o"
  "CMakeFiles/mk_skb.dir/skb/skb.cc.o.d"
  "libmk_skb.a"
  "libmk_skb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_skb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
