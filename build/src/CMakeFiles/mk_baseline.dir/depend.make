# Empty dependencies file for mk_baseline.
# This may be replaced when dependencies are built.
