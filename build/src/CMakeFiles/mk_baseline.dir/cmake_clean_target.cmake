file(REMOVE_RECURSE
  "libmk_baseline.a"
)
