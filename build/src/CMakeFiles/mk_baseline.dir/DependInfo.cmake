
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/ipi_shootdown.cc" "src/CMakeFiles/mk_baseline.dir/baseline/ipi_shootdown.cc.o" "gcc" "src/CMakeFiles/mk_baseline.dir/baseline/ipi_shootdown.cc.o.d"
  "/root/repo/src/baseline/l4_ipc.cc" "src/CMakeFiles/mk_baseline.dir/baseline/l4_ipc.cc.o" "gcc" "src/CMakeFiles/mk_baseline.dir/baseline/l4_ipc.cc.o.d"
  "/root/repo/src/baseline/shared_netstack.cc" "src/CMakeFiles/mk_baseline.dir/baseline/shared_netstack.cc.o" "gcc" "src/CMakeFiles/mk_baseline.dir/baseline/shared_netstack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mk_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_urpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
