file(REMOVE_RECURSE
  "CMakeFiles/mk_baseline.dir/baseline/ipi_shootdown.cc.o"
  "CMakeFiles/mk_baseline.dir/baseline/ipi_shootdown.cc.o.d"
  "CMakeFiles/mk_baseline.dir/baseline/l4_ipc.cc.o"
  "CMakeFiles/mk_baseline.dir/baseline/l4_ipc.cc.o.d"
  "CMakeFiles/mk_baseline.dir/baseline/shared_netstack.cc.o"
  "CMakeFiles/mk_baseline.dir/baseline/shared_netstack.cc.o.d"
  "libmk_baseline.a"
  "libmk_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
