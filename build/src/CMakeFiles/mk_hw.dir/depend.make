# Empty dependencies file for mk_hw.
# This may be replaced when dependencies are built.
