file(REMOVE_RECURSE
  "CMakeFiles/mk_hw.dir/hw/coherence.cc.o"
  "CMakeFiles/mk_hw.dir/hw/coherence.cc.o.d"
  "CMakeFiles/mk_hw.dir/hw/machine.cc.o"
  "CMakeFiles/mk_hw.dir/hw/machine.cc.o.d"
  "CMakeFiles/mk_hw.dir/hw/platform.cc.o"
  "CMakeFiles/mk_hw.dir/hw/platform.cc.o.d"
  "CMakeFiles/mk_hw.dir/hw/topology.cc.o"
  "CMakeFiles/mk_hw.dir/hw/topology.cc.o.d"
  "libmk_hw.a"
  "libmk_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
