file(REMOVE_RECURSE
  "libmk_hw.a"
)
