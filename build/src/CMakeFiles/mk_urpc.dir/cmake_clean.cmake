file(REMOVE_RECURSE
  "CMakeFiles/mk_urpc.dir/urpc/channel.cc.o"
  "CMakeFiles/mk_urpc.dir/urpc/channel.cc.o.d"
  "libmk_urpc.a"
  "libmk_urpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_urpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
