file(REMOVE_RECURSE
  "libmk_urpc.a"
)
