# Empty dependencies file for mk_urpc.
# This may be replaced when dependencies are built.
