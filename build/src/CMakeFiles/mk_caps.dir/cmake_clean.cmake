file(REMOVE_RECURSE
  "CMakeFiles/mk_caps.dir/caps/capability.cc.o"
  "CMakeFiles/mk_caps.dir/caps/capability.cc.o.d"
  "CMakeFiles/mk_caps.dir/caps/cspace.cc.o"
  "CMakeFiles/mk_caps.dir/caps/cspace.cc.o.d"
  "libmk_caps.a"
  "libmk_caps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
