file(REMOVE_RECURSE
  "libmk_caps.a"
)
