# Empty compiler generated dependencies file for mk_caps.
# This may be replaced when dependencies are built.
