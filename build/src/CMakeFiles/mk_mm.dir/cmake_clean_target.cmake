file(REMOVE_RECURSE
  "libmk_mm.a"
)
