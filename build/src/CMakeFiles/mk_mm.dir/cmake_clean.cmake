file(REMOVE_RECURSE
  "CMakeFiles/mk_mm.dir/mm/buddy.cc.o"
  "CMakeFiles/mk_mm.dir/mm/buddy.cc.o.d"
  "CMakeFiles/mk_mm.dir/mm/vspace.cc.o"
  "CMakeFiles/mk_mm.dir/mm/vspace.cc.o.d"
  "libmk_mm.a"
  "libmk_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
