# Empty compiler generated dependencies file for mk_mm.
# This may be replaced when dependencies are built.
