file(REMOVE_RECURSE
  "libmk_apps.a"
)
