# Empty compiler generated dependencies file for mk_apps.
# This may be replaced when dependencies are built.
