file(REMOVE_RECURSE
  "CMakeFiles/mk_apps.dir/apps/db.cc.o"
  "CMakeFiles/mk_apps.dir/apps/db.cc.o.d"
  "CMakeFiles/mk_apps.dir/apps/httpd.cc.o"
  "CMakeFiles/mk_apps.dir/apps/httpd.cc.o.d"
  "CMakeFiles/mk_apps.dir/apps/workloads.cc.o"
  "CMakeFiles/mk_apps.dir/apps/workloads.cc.o.d"
  "libmk_apps.a"
  "libmk_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
