
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/db.cc" "src/CMakeFiles/mk_apps.dir/apps/db.cc.o" "gcc" "src/CMakeFiles/mk_apps.dir/apps/db.cc.o.d"
  "/root/repo/src/apps/httpd.cc" "src/CMakeFiles/mk_apps.dir/apps/httpd.cc.o" "gcc" "src/CMakeFiles/mk_apps.dir/apps/httpd.cc.o.d"
  "/root/repo/src/apps/workloads.cc" "src/CMakeFiles/mk_apps.dir/apps/workloads.cc.o" "gcc" "src/CMakeFiles/mk_apps.dir/apps/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mk_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_urpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
