file(REMOVE_RECURSE
  "CMakeFiles/mk_sim.dir/sim/executor.cc.o"
  "CMakeFiles/mk_sim.dir/sim/executor.cc.o.d"
  "libmk_sim.a"
  "libmk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
