file(REMOVE_RECURSE
  "libmk_sim.a"
)
