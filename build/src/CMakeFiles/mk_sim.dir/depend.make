# Empty dependencies file for mk_sim.
# This may be replaced when dependencies are built.
