file(REMOVE_RECURSE
  "CMakeFiles/mk_idc.dir/idc/name_service.cc.o"
  "CMakeFiles/mk_idc.dir/idc/name_service.cc.o.d"
  "CMakeFiles/mk_idc.dir/idc/service.cc.o"
  "CMakeFiles/mk_idc.dir/idc/service.cc.o.d"
  "libmk_idc.a"
  "libmk_idc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_idc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
