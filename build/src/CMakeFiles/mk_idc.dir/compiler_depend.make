# Empty compiler generated dependencies file for mk_idc.
# This may be replaced when dependencies are built.
