file(REMOVE_RECURSE
  "libmk_idc.a"
)
