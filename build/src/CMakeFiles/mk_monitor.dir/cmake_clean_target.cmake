file(REMOVE_RECURSE
  "libmk_monitor.a"
)
