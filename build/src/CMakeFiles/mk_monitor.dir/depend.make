# Empty dependencies file for mk_monitor.
# This may be replaced when dependencies are built.
