file(REMOVE_RECURSE
  "CMakeFiles/mk_monitor.dir/monitor/monitor.cc.o"
  "CMakeFiles/mk_monitor.dir/monitor/monitor.cc.o.d"
  "libmk_monitor.a"
  "libmk_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
