# Empty compiler generated dependencies file for mk_proc.
# This may be replaced when dependencies are built.
