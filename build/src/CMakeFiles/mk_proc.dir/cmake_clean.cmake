file(REMOVE_RECURSE
  "CMakeFiles/mk_proc.dir/proc/openmp.cc.o"
  "CMakeFiles/mk_proc.dir/proc/openmp.cc.o.d"
  "CMakeFiles/mk_proc.dir/proc/threads.cc.o"
  "CMakeFiles/mk_proc.dir/proc/threads.cc.o.d"
  "libmk_proc.a"
  "libmk_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
