file(REMOVE_RECURSE
  "libmk_proc.a"
)
