file(REMOVE_RECURSE
  "libmk_kernel.a"
)
