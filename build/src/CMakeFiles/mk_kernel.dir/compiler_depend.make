# Empty compiler generated dependencies file for mk_kernel.
# This may be replaced when dependencies are built.
