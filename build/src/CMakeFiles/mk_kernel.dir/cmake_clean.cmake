file(REMOVE_RECURSE
  "CMakeFiles/mk_kernel.dir/kernel/cpu_driver.cc.o"
  "CMakeFiles/mk_kernel.dir/kernel/cpu_driver.cc.o.d"
  "libmk_kernel.a"
  "libmk_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
