file(REMOVE_RECURSE
  "CMakeFiles/mk_net.dir/net/nic.cc.o"
  "CMakeFiles/mk_net.dir/net/nic.cc.o.d"
  "CMakeFiles/mk_net.dir/net/packet_channel.cc.o"
  "CMakeFiles/mk_net.dir/net/packet_channel.cc.o.d"
  "CMakeFiles/mk_net.dir/net/stack.cc.o"
  "CMakeFiles/mk_net.dir/net/stack.cc.o.d"
  "CMakeFiles/mk_net.dir/net/wire.cc.o"
  "CMakeFiles/mk_net.dir/net/wire.cc.o.d"
  "libmk_net.a"
  "libmk_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
