# Empty compiler generated dependencies file for caps_test.
# This may be replaced when dependencies are built.
