file(REMOVE_RECURSE
  "CMakeFiles/skb_test.dir/skb_test.cc.o"
  "CMakeFiles/skb_test.dir/skb_test.cc.o.d"
  "skb_test"
  "skb_test.pdb"
  "skb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
