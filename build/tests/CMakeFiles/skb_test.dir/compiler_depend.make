# Empty compiler generated dependencies file for skb_test.
# This may be replaced when dependencies are built.
