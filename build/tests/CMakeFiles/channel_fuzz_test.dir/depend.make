# Empty dependencies file for channel_fuzz_test.
# This may be replaced when dependencies are built.
