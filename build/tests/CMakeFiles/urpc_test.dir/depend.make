# Empty dependencies file for urpc_test.
# This may be replaced when dependencies are built.
