file(REMOVE_RECURSE
  "CMakeFiles/urpc_test.dir/urpc_test.cc.o"
  "CMakeFiles/urpc_test.dir/urpc_test.cc.o.d"
  "urpc_test"
  "urpc_test.pdb"
  "urpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
