# Empty compiler generated dependencies file for dbhttp_test.
# This may be replaced when dependencies are built.
