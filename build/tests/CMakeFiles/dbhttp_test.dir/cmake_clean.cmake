file(REMOVE_RECURSE
  "CMakeFiles/dbhttp_test.dir/dbhttp_test.cc.o"
  "CMakeFiles/dbhttp_test.dir/dbhttp_test.cc.o.d"
  "dbhttp_test"
  "dbhttp_test.pdb"
  "dbhttp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbhttp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
