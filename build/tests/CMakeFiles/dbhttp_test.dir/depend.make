# Empty dependencies file for dbhttp_test.
# This may be replaced when dependencies are built.
