file(REMOVE_RECURSE
  "CMakeFiles/idc_test.dir/idc_test.cc.o"
  "CMakeFiles/idc_test.dir/idc_test.cc.o.d"
  "idc_test"
  "idc_test.pdb"
  "idc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
