# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/urpc_test[1]_include.cmake")
include("/root/repo/build/tests/caps_test[1]_include.cmake")
include("/root/repo/build/tests/mm_test[1]_include.cmake")
include("/root/repo/build/tests/skb_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/proc_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/dbhttp_test[1]_include.cmake")
include("/root/repo/build/tests/idc_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/coherence_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/channel_fuzz_test[1]_include.cmake")
