file(REMOVE_RECURSE
  "CMakeFiles/fig3_shm_vs_msg.dir/fig3_shm_vs_msg.cc.o"
  "CMakeFiles/fig3_shm_vs_msg.dir/fig3_shm_vs_msg.cc.o.d"
  "fig3_shm_vs_msg"
  "fig3_shm_vs_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_shm_vs_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
