# Empty compiler generated dependencies file for fig3_shm_vs_msg.
# This may be replaced when dependencies are built.
