file(REMOVE_RECURSE
  "CMakeFiles/fig6_shootdown.dir/fig6_shootdown.cc.o"
  "CMakeFiles/fig6_shootdown.dir/fig6_shootdown.cc.o.d"
  "fig6_shootdown"
  "fig6_shootdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_shootdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
