# Empty dependencies file for fig6_shootdown.
# This may be replaced when dependencies are built.
