file(REMOVE_RECURSE
  "CMakeFiles/sec54_webserver.dir/sec54_webserver.cc.o"
  "CMakeFiles/sec54_webserver.dir/sec54_webserver.cc.o.d"
  "sec54_webserver"
  "sec54_webserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_webserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
