# Empty compiler generated dependencies file for sec54_webserver.
# This may be replaced when dependencies are built.
