# Empty dependencies file for fig9_compute.
# This may be replaced when dependencies are built.
