file(REMOVE_RECURSE
  "CMakeFiles/fig9_compute.dir/fig9_compute.cc.o"
  "CMakeFiles/fig9_compute.dir/fig9_compute.cc.o.d"
  "fig9_compute"
  "fig9_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
