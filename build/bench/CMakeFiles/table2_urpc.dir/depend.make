# Empty dependencies file for table2_urpc.
# This may be replaced when dependencies are built.
