file(REMOVE_RECURSE
  "CMakeFiles/table2_urpc.dir/table2_urpc.cc.o"
  "CMakeFiles/table2_urpc.dir/table2_urpc.cc.o.d"
  "table2_urpc"
  "table2_urpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_urpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
