file(REMOVE_RECURSE
  "CMakeFiles/polling_model.dir/polling_model.cc.o"
  "CMakeFiles/polling_model.dir/polling_model.cc.o.d"
  "polling_model"
  "polling_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polling_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
