# Empty dependencies file for polling_model.
# This may be replaced when dependencies are built.
