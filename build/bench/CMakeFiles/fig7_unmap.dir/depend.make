# Empty dependencies file for fig7_unmap.
# This may be replaced when dependencies are built.
