file(REMOVE_RECURSE
  "CMakeFiles/fig7_unmap.dir/fig7_unmap.cc.o"
  "CMakeFiles/fig7_unmap.dir/fig7_unmap.cc.o.d"
  "fig7_unmap"
  "fig7_unmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_unmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
