# Empty compiler generated dependencies file for table4_loopback.
# This may be replaced when dependencies are built.
