file(REMOVE_RECURSE
  "CMakeFiles/table4_loopback.dir/table4_loopback.cc.o"
  "CMakeFiles/table4_loopback.dir/table4_loopback.cc.o.d"
  "table4_loopback"
  "table4_loopback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_loopback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
