file(REMOVE_RECURSE
  "CMakeFiles/fig8_twopc.dir/fig8_twopc.cc.o"
  "CMakeFiles/fig8_twopc.dir/fig8_twopc.cc.o.d"
  "fig8_twopc"
  "fig8_twopc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_twopc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
