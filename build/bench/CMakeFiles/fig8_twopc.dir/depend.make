# Empty dependencies file for fig8_twopc.
# This may be replaced when dependencies are built.
