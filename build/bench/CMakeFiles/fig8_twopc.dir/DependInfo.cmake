
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_twopc.cc" "bench/CMakeFiles/fig8_twopc.dir/fig8_twopc.cc.o" "gcc" "bench/CMakeFiles/fig8_twopc.dir/fig8_twopc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mk_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_urpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_caps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_skb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
