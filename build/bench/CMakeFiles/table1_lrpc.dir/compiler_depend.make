# Empty compiler generated dependencies file for table1_lrpc.
# This may be replaced when dependencies are built.
