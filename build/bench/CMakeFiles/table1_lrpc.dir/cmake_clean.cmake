file(REMOVE_RECURSE
  "CMakeFiles/table1_lrpc.dir/table1_lrpc.cc.o"
  "CMakeFiles/table1_lrpc.dir/table1_lrpc.cc.o.d"
  "table1_lrpc"
  "table1_lrpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_lrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
