file(REMOVE_RECURSE
  "CMakeFiles/sec54_netperf.dir/sec54_netperf.cc.o"
  "CMakeFiles/sec54_netperf.dir/sec54_netperf.cc.o.d"
  "sec54_netperf"
  "sec54_netperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_netperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
