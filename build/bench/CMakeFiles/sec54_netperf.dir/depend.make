# Empty dependencies file for sec54_netperf.
# This may be replaced when dependencies are built.
