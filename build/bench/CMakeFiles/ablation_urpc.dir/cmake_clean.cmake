file(REMOVE_RECURSE
  "CMakeFiles/ablation_urpc.dir/ablation_urpc.cc.o"
  "CMakeFiles/ablation_urpc.dir/ablation_urpc.cc.o.d"
  "ablation_urpc"
  "ablation_urpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_urpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
