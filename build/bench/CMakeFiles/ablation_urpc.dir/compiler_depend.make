# Empty compiler generated dependencies file for ablation_urpc.
# This may be replaced when dependencies are built.
