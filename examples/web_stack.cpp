// Web stack demo: the section 5.4 IO configuration as a runnable program.
//
// Boots the 2x2-core AMD machine with the paper's placement — e1000 driver
// on core 2, web server on core 3, database on core 1 — all user-space
// processes connected by URPC, and issues HTTP requests (static page and a
// TPC-W-style SQL query) from a simulated client.
//
// Build & run:  ./build/examples/web_stack
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/db.h"
#include "apps/httpd.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "net/packet_channel.h"
#include "net/stack.h"
#include "sim/executor.h"
#include "urpc/channel.h"

using namespace mk;
using net::Packet;
using sim::Cycles;
using sim::Task;

namespace {

constexpr net::Ipv4Addr kServerIp = net::MakeIp(10, 0, 0, 1);
constexpr net::Ipv4Addr kClientIp = net::MakeIp(10, 0, 0, 7);
const net::MacAddr kServerMac{2, 0, 0, 0, 0, 1};
const net::MacAddr kClientMac{2, 0, 0, 0, 0, 7};

Task<> DbServer(hw::Machine& m, apps::Database& db, urpc::Channel& queries,
                net::PacketChannel& replies, int expected) {
  for (int q = 0; q < expected; ++q) {
    std::string sql;
    while (true) {
      urpc::Message msg = co_await queries.Recv();
      sql.append(reinterpret_cast<const char*>(msg.bytes.data()), msg.len);
      if (msg.tag == 1) {
        break;
      }
    }
    auto result = db.Query(sql);
    std::string rendered;
    if (std::holds_alternative<apps::Database::ResultSet>(result)) {
      auto& rs = std::get<apps::Database::ResultSet>(result);
      co_await m.Compute(1, 5000 + rs.rows_scanned * 25);
      for (const auto& row : rs.rows) {
        for (const auto& v : row) {
          rendered += apps::DbValueToString(v) + "|";
        }
      }
    } else {
      rendered = "error: " + std::get<apps::DbError>(result).message;
    }
    co_await replies.Send(Packet(rendered.begin(), rendered.end()));
  }
}

Task<> Client(sim::Executor& exec, net::NetStack& stack, std::string target) {
  Cycles t0 = exec.now();
  net::NetStack::TcpConn* conn = co_await stack.TcpConnect(kServerIp, 80);
  co_await stack.TcpSend(*conn, "GET " + target + " HTTP/1.0\r\n\r\n");
  std::string response;
  while (!conn->peer_closed) {
    auto chunk = co_await conn->Read();
    if (chunk.empty()) {
      break;
    }
    response.append(chunk.begin(), chunk.end());
  }
  co_await stack.TcpClose(*conn);
  std::string first_line = response.substr(0, response.find('\r'));
  std::printf("GET %-50s -> %s (%zu bytes, %llu cycles)\n", target.c_str(),
              first_line.c_str(), response.size(),
              static_cast<unsigned long long>(exec.now() - t0));
  std::size_t body_at = response.find("\r\n\r\n");
  if (target.rfind("/query", 0) == 0 && body_at != std::string::npos) {
    std::printf("    rows: %s\n", response.substr(body_at + 4, 60).c_str());
  }
}

}  // namespace

int main() {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd2x2());
  std::printf("placement: services core 0 | database core 1 | e1000 driver core 2 | "
              "web server core 3\n\n");

  net::NetStack server(machine, 3, kServerIp, kServerMac);
  net::NetStack client(machine, 0, kClientIp, kClientMac);
  server.AddArp(kClientIp, kClientMac);
  client.AddArp(kServerIp, kServerMac);
  // Frames pass through the driver core (URPC hops modeled as driver work).
  server.SetOutput([&machine, &client](Packet p) -> Task<> {
    co_await machine.Compute(2, 1400);
    co_await client.Input(std::move(p));
  });
  client.SetOutput([&machine, &server](Packet p) -> Task<> {
    co_await machine.Compute(2, 1400);
    co_await server.Input(std::move(p));
  });

  apps::Database db;
  apps::PopulateTpcw(&db, 2000);
  urpc::Channel queries(machine, 3, 1);
  net::PacketChannel replies(machine, 1, 3, net::PacketChannel::Options{});
  exec.Spawn(DbServer(machine, db, queries, replies, 1));

  apps::HttpServer http(machine, server, 80,
                        [&queries, &replies](std::string sql) -> Task<std::string> {
                          for (std::size_t off = 0; off < sql.size();
                               off += urpc::Message::kPayloadBytes) {
                            urpc::Message msg;
                            msg.tag =
                                off + urpc::Message::kPayloadBytes >= sql.size() ? 1 : 2;
                            msg.len = static_cast<std::uint32_t>(std::min(
                                urpc::Message::kPayloadBytes, sql.size() - off));
                            std::memcpy(msg.bytes.data(), sql.data() + off, msg.len);
                            co_await queries.Send(msg);
                          }
                          Packet reply = co_await replies.Recv();
                          co_return std::string(reply.begin(), reply.end());
                        });
  exec.Spawn(http.Serve());

  std::string sql = apps::TpcwQuery(42);
  for (char& ch : sql) {
    if (ch == ' ') {
      ch = '+';
    }
  }
  exec.Spawn(Client(exec, client, "/index.html"));
  exec.RunUntil(exec.now() + 50'000'000);
  exec.Spawn(Client(exec, client, "/query?sql=" + sql));
  exec.RunUntil(exec.now() + 50'000'000);
  exec.Spawn(Client(exec, client, "/missing"));
  exec.RunUntil(exec.now() + 50'000'000);
  std::printf("\nserved %llu requests; simulated time %llu cycles\n",
              static_cast<unsigned long long>(http.requests_served()),
              static_cast<unsigned long long>(exec.now()));
  return 0;
}
