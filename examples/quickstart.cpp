// Quickstart: boot a simulated multikernel and send messages between cores.
//
// This walks the core public API end to end:
//   1. pick a machine model (one of the paper's four test platforms),
//   2. boot the per-core CPU drivers and monitors,
//   3. populate the system knowledge base from hardware discovery plus
//      online URPC latency measurement,
//   4. exchange URPC messages between cores,
//   5. run a global TLB shootdown over the SKB-derived multicast tree.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "skb/skb.h"
#include "urpc/channel.h"

using namespace mk;
using sim::Cycles;
using sim::Task;

namespace {

Task<> PingPong(sim::Executor& exec, urpc::Channel& ping, urpc::Channel& pong) {
  for (int i = 0; i < 3; ++i) {
    Cycles t0 = exec.now();
    co_await ping.Send(urpc::Pack(1, i));
    urpc::Message reply = co_await pong.Recv();
    std::printf("  ping %d -> core %d -> pong %d: round trip %llu cycles\n", i,
                ping.receiver_core(), urpc::Unpack<int>(reply),
                static_cast<unsigned long long>(exec.now() - t0));
  }
}

Task<> Responder(urpc::Channel& ping, urpc::Channel& pong) {
  for (int i = 0; i < 3; ++i) {
    urpc::Message msg = co_await ping.Recv();
    co_await pong.Send(urpc::Pack(2, urpc::Unpack<int>(msg)));
  }
}

Task<> Shootdown(monitor::MonitorSystem& sys) {
  hw::Machine& m = sys.machine();
  // Seed a translation into every TLB, then globally invalidate it.
  for (int c = 0; c < m.num_cores(); ++c) {
    m.tlb(c).Insert(0x400000, hw::TlbEntry{0x1000, true});
  }
  auto result = co_await sys.on(0).GlobalInvalidate(
      0x400000, 1, monitor::Protocol::kNumaMulticast, monitor::OpFlags{});
  int stale = 0;
  for (int c = 0; c < m.num_cores(); ++c) {
    stale += m.tlb(c).Contains(0x400000) ? 1 : 0;
  }
  std::printf("  global TLB shootdown over %d cores: %llu cycles, %d stale entries\n",
              m.num_cores(), static_cast<unsigned long long>(result.latency), stale);
  sys.Shutdown();
}

}  // namespace

int main() {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd4x4());
  std::printf("booting \"%s\": %d cores in %d packages\n", machine.spec().name.c_str(),
              machine.num_cores(), machine.topo().num_packages());

  auto drivers = kernel::CpuDriver::BootAll(machine);
  skb::Skb skb(machine);
  skb.PopulateFromHardware();
  exec.Spawn(skb.MeasureUrpcLatencies());
  exec.Run();
  std::printf("SKB populated: %zu facts (topology + measured URPC latencies)\n",
              skb.facts().size());

  std::printf("\nURPC ping-pong between core 0 and core 4 (different packages):\n");
  urpc::Channel ping(machine, 0, 4);
  urpc::Channel pong(machine, 4, 0);
  exec.Spawn(PingPong(exec, ping, pong));
  exec.Spawn(Responder(ping, pong));
  exec.Run();

  std::printf("\nmonitors + one-phase-commit shootdown:\n");
  monitor::MonitorSystem monitors(machine, skb, drivers);
  monitors.Boot();
  exec.Spawn(Shootdown(monitors));
  exec.Run();

  std::printf("\ndone at simulated time %llu cycles\n",
              static_cast<unsigned long long>(exec.now()));
  return 0;
}
