// Heterogeneous cores demo (sections 2.2 and 7): a big.LITTLE-style machine
// where half the cores run at half speed. The hardware-neutral OS structure
// is unchanged — the SKB knows each core's speed, placement queries prefer
// fast cores, and the same workload code runs everywhere; only the cycle
// accounting differs.
//
// Build & run:  ./build/examples/heterogeneous
#include <cstdio>
#include <vector>

#include "apps/workloads.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "proc/openmp.h"
#include "sim/executor.h"
#include "skb/skb.h"

using namespace mk;
using sim::Cycles;
using sim::Task;

namespace {

double RunCgOn(hw::PlatformSpec spec, std::vector<int> cores) {
  sim::Executor exec;
  hw::Machine machine(exec, std::move(spec));
  proc::OmpRuntime omp(machine, std::move(cores), proc::SyncFlavor::kUserSpace);
  apps::WorkloadParams params;
  params.size = 2048;
  params.iterations = 4;
  apps::WorkloadResult result;
  exec.Spawn([](Task<apps::WorkloadResult> task, apps::WorkloadResult& out) -> Task<> {
    out = co_await std::move(task);
  }(apps::RunCg(omp, params), result));
  exec.Run();
  return static_cast<double>(result.cycles);
}

}  // namespace

int main() {
  // 4x4-core AMD, but packages 2 and 3 hold half-speed efficiency cores.
  hw::PlatformSpec hetero = hw::Amd4x4();
  hetero.name = "4x4-core AMD (big.LITTLE)";
  hetero.core_speed.assign(16, 1.0);
  for (int c = 8; c < 16; ++c) {
    hetero.core_speed[static_cast<std::size_t>(c)] = 0.5;
  }

  sim::Executor exec;
  hw::Machine machine(exec, hetero);
  skb::Skb skb(machine);
  skb.PopulateFromHardware();
  std::printf("machine: %s\n", hetero.name.c_str());
  std::printf("SKB core speeds: core 0 = %lld m, core 12 = %lld m\n",
              static_cast<long long>(skb.facts().Query(
                  "core_speed_milli", {0, skb::FactStore::kWildcard})[0][1]),
              static_cast<long long>(skb.facts().Query(
                  "core_speed_milli", {12, skb::FactStore::kWildcard})[0][1]));

  std::printf("\nCG on 4 threads, by core choice:\n");
  std::printf("  %-28s %12.0f cycles\n", "4 big cores (0-3)",
              RunCgOn(hetero, {0, 1, 2, 3}));
  std::printf("  %-28s %12.0f cycles\n", "4 little cores (8-11)",
              RunCgOn(hetero, {8, 9, 10, 11}));
  std::printf("  %-28s %12.0f cycles\n", "mixed (0,1,8,9)",
              RunCgOn(hetero, {0, 1, 8, 9}));
  std::printf("  %-28s %12.0f cycles\n", "8 mixed vs 4 big:",
              RunCgOn(hetero, {0, 1, 2, 3, 8, 9, 10, 11}));
  std::printf(
      "\nThe barrier-synchronized phases run at the pace of the slowest member, so a\n"
      "mixed team is little faster than its slow half alone - the placement problem\n"
      "the SKB's speed facts exist to solve (section 4.9).\n");
  return 0;
}
