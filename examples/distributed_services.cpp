// Distributed services demo: the multikernel as a distributed system.
//
//  1. The SKB's Datalog subset derives interconnect reachability from
//     discovered facts (section 4.9).
//  2. A typed service is exported through the name service and called from
//     another core over a monitor-established URPC binding (section 4.6).
//  3. A replicated in-memory file system (section 7's future-work direction):
//     reads are replica-local, writes are sequenced and propagated with a
//     one-phase-commit collective.
//  4. Core hotplug (section 3.3): a core powers down, global state moves on
//     without it, and the returning core catches up by state transfer.
//
// Build & run:  ./build/examples/distributed_services
#include <cstdio>
#include <map>
#include <string>

#include "fs/ramfs.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "idc/name_service.h"
#include "idc/service.h"
#include "kernel/cpu_driver.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "skb/datalog.h"
#include "skb/skb.h"

using namespace mk;
using sim::Cycles;
using sim::Task;

namespace {

struct TimeReq {
  std::uint64_t dummy;
};
struct TimeResp {
  std::uint64_t cycles;
};

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

Task<> Demo(sim::Executor& exec, hw::Machine& machine, skb::Skb& skb,
            monitor::MonitorSystem& sys, idc::NameService& names,
            idc::Service<TimeReq, TimeResp>& clock_svc, fs::ReplicatedFs& rfs) {
  // --- Datalog over the SKB ---
  skb::Datalog dl(skb.facts());
  dl.AddRuleText("conn(X, Y) :- link(X, Y).");
  dl.AddRuleText("conn(X, Y) :- link(Y, X).");
  dl.AddRuleText("reach(X, Y) :- conn(X, Y).");
  dl.AddRuleText("reach(X, Z) :- reach(X, Y), conn(Y, Z).");
  std::size_t derived = dl.Evaluate();
  std::printf("datalog: derived %zu connectivity facts; pkg0 reaches pkg7: %s\n", derived,
              skb.facts().Query("reach", {0, 7}).empty() ? "no" : "yes");

  // --- Typed service via the name service ---
  std::map<std::string, std::string> props = {{"class", "clock"}};
  co_await clock_svc.Export(std::move(props));
  auto client = co_await idc::ServiceClient<TimeReq, TimeResp>::Connect(
      machine, names, clock_svc, 13);
  TimeResp resp = co_await client->Call(TimeReq{0});
  std::printf("clock service (core %d) called from core 13: t=%llu cycles\n",
              clock_svc.core(), static_cast<unsigned long long>(resp.cycles));

  // --- Replicated FS ---
  (void)co_await rfs.Create(2, "/etc/hosts");
  (void)co_await rfs.Write(2, "/etc/hosts", Bytes("10.0.0.1 barrelfish\n"));
  auto data = co_await rfs.Read(30, "/etc/hosts");  // far core, local replica
  std::printf("replicated fs: core 30 reads %zu bytes locally; replicas consistent: %s\n",
              data ? data->size() : 0, rfs.ReplicasConsistent() ? "yes" : "no");

  // --- Hotplug ---
  (void)co_await sys.OfflineCore(0, 17);
  (void)co_await rfs.Write(2, "/etc/hosts", Bytes("10.0.0.2 updated-while-17-down\n"));
  std::printf("core 17 offline (%d cores online); fs updated without it\n",
              sys.OnlineCount());
  (void)co_await sys.OnlineCore(0, 17);
  co_await rfs.SyncReplica(0, 17);  // fs state transfer for the stale replica
  std::printf("core 17 back online; caps consistent: %s, fs consistent: %s\n",
              sys.ReplicasConsistent() ? "yes" : "no",
              rfs.ReplicasConsistent() ? "yes" : "no");

  clock_svc.Stop();
  sys.Shutdown();
}

}  // namespace

int main() {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd8x4());
  auto drivers = kernel::CpuDriver::BootAll(machine);
  skb::Skb skb(machine);
  skb.PopulateFromHardware();
  exec.Spawn(skb.MeasureUrpcLatencies());
  exec.Run();
  monitor::MonitorSystem sys(machine, skb, drivers);
  sys.Boot();
  idc::NameService names(machine, 0);
  idc::Service<TimeReq, TimeResp> clock_svc(
      machine, names, 4, "clock", [&exec](const TimeReq&) -> Task<TimeResp> {
        co_return TimeResp{exec.now()};
      });
  fs::ReplicatedFs rfs(sys);
  exec.Spawn(clock_svc.Serve());
  exec.Spawn(Demo(exec, machine, skb, sys, names, clock_svc, rfs));
  exec.Run();
  std::printf("done at simulated time %llu cycles\n",
              static_cast<unsigned long long>(exec.now()));
  return 0;
}
