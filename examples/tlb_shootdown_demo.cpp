// TLB shootdown demo: capability-backed memory mapping across cores, with
// unmap driven through the monitors' one-phase-commit protocol — the
// section 5.1 case study as a runnable program.
//
// A shared address space spans all 32 cores of the 8x4-core AMD machine.
// Memory is mapped by retyping RAM capabilities to frames (section 4.7); the
// unmap wires VSpace's shootdown hook to the monitors, which pick the
// SKB-derived NUMA-aware multicast route. The demo then compares all four
// routing protocols.
//
// Build & run:  ./build/examples/tlb_shootdown_demo
#include <cstdio>
#include <vector>

#include "caps/capability.h"
#include "hw/machine.h"
#include "hw/platform.h"
#include "kernel/cpu_driver.h"
#include "mm/vspace.h"
#include "monitor/monitor.h"
#include "sim/executor.h"
#include "skb/skb.h"

using namespace mk;
using sim::Cycles;
using sim::Task;

namespace {

Task<> Demo(sim::Executor& exec, hw::Machine& m, monitor::MonitorSystem& sys) {
  // User-level memory management: retype RAM -> frame, map, touch, unmap.
  caps::CapDb& caps = sys.on(0).caps();
  caps::CapId root = caps.InstallRoot(0x10000000, 1 << 20);
  auto frame = caps.Retype(root, caps::CapType::kFrame, 2 * hw::kPageSize, 1);
  std::printf("retyped RAM -> frame: %s\n", caps::CapErrName(frame.err));

  std::vector<int> all_cores;
  for (int c = 0; c < m.num_cores(); ++c) {
    all_cores.push_back(c);
  }
  mm::VSpace vspace(m, caps, all_cores);
  vspace.SetShootdownHook(
      [&sys](int initiator, std::vector<std::uint64_t> pages) -> Task<> {
        for (std::uint64_t page : pages) {
          (void)co_await sys.on(initiator).GlobalInvalidate(
              page, 1, monitor::Protocol::kNumaMulticast, monitor::OpFlags{});
        }
      });

  mm::MapErr err = vspace.Map(frame.children[0], 0x7f0000000000, mm::Perms{true});
  std::printf("mapped 2 pages at 0x7f0000000000: %s\n", mm::MapErrName(err));

  // Touch the mapping from many cores so their TLBs cache it.
  for (int c : {0, 5, 13, 21, 31}) {
    std::uint64_t pa = co_await vspace.Translate(c, 0x7f0000000000);
    std::printf("  core %2d translated -> %#llx (TLB filled)\n", c,
                static_cast<unsigned long long>(pa));
  }

  Cycles t0 = exec.now();
  err = co_await vspace.Unmap(0, 0x7f0000000000, 2 * hw::kPageSize);
  std::printf("unmap + global shootdown: %s in %llu cycles\n", mm::MapErrName(err),
              static_cast<unsigned long long>(exec.now() - t0));
  for (int c : {0, 5, 13, 21, 31}) {
    std::printf("  core %2d TLB stale? %s\n", c,
                m.tlb(c).Contains(0x7f0000000000) ? "YES (bug!)" : "no");
  }

  // Protocol comparison, raw messaging cost (Figure 6's experiment).
  std::printf("\nraw shootdown protocol comparison over %d cores:\n", m.num_cores());
  monitor::OpFlags raw;
  raw.raw = true;
  raw.skip_tlb = true;
  for (auto proto : {monitor::Protocol::kBroadcast, monitor::Protocol::kUnicast,
                     monitor::Protocol::kMulticast, monitor::Protocol::kNumaMulticast}) {
    auto result = co_await sys.on(0).GlobalInvalidate(0x400000, 1, proto, raw);
    std::printf("  %-22s %6llu cycles\n", monitor::ProtocolName(proto),
                static_cast<unsigned long long>(result.latency));
  }
  sys.Shutdown();
}

}  // namespace

int main() {
  sim::Executor exec;
  hw::Machine machine(exec, hw::Amd8x4());
  auto drivers = kernel::CpuDriver::BootAll(machine);
  skb::Skb skb(machine);
  skb.PopulateFromHardware();
  exec.Spawn(skb.MeasureUrpcLatencies());
  exec.Run();
  monitor::MonitorSystem monitors(machine, skb, drivers);
  monitors.Boot();
  exec.Spawn(Demo(exec, machine, monitors));
  exec.Run();
  return 0;
}
